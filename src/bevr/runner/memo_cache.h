// Thread-safe memoization for the runner's hot repeated computations.
//
// Sweeps hammer the same evaluations from many tasks: k_max(C) argmax
// searches (shared by B, R, δ and Δ at one capacity), the Hurwitz-zeta
// λ-calibration of algebraic loads (a root solve per construction),
// and the welfare maximisations' dense V(C) probing (overlapping C
// grids across prices). MemoCache is a sharded hash map keyed by
// (operation tag, double argument) with hit/miss counters; values are
// whatever the uncached computation returned, so cached and uncached
// paths are bitwise identical. Concurrent misses on the same key may
// compute twice — the computations are pure, so last-write-wins is
// harmless and nothing serialises on the compute.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "bevr/obs/metrics.h"

namespace bevr::runner {

/// Cumulative cache effectiveness counters.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class MemoCache {
 public:
  /// A disabled cache computes every call and counts it as a miss —
  /// handy for A/B-ing cache effect without touching call sites.
  explicit MemoCache(bool enabled = true);

  /// Return the memoized value for (op, arg), computing and storing it
  /// on first sight. `op` identifies the computation (e.g. "B", "kmax");
  /// two ops never collide even at equal args.
  double get_or_compute(const std::string& op, double arg,
                        const std::function<double()>& compute);

  /// Two-argument key convenience (e.g. (z, mean) calibrations).
  double get_or_compute2(const std::string& op, double arg_a, double arg_b,
                         const std::function<double()>& compute);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] bool enabled() const { return enabled_; }
  void clear();

 private:
  struct Key {
    std::string op;
    double a = 0.0;
    double b = 0.0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, double, KeyHash> map;
  };

  double lookup(Key key, const std::function<double()>& compute);

  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards_;
  // Per-instance stats() view; the process-wide totals live on the
  // obs registry counters below (runner/cache/{hits,misses}).
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  obs::Counter obs_hits_;
  obs::Counter obs_misses_;
  bool enabled_;
};

}  // namespace bevr::runner
