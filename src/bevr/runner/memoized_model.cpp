#include "bevr/runner/memoized_model.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <utility>

namespace bevr::runner {

namespace {

// Distinct models may share one MemoCache (pooled stats); tag each
// instance so models with different accuracy options never alias.
std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MemoizedVariableLoad::MemoizedVariableLoad(
    std::shared_ptr<const core::VariableLoadModel> model,
    std::shared_ptr<MemoCache> cache)
    : MemoizedVariableLoad(std::move(model), std::move(cache), nullptr) {}

MemoizedVariableLoad::MemoizedVariableLoad(
    std::shared_ptr<const core::VariableLoadModel> model,
    std::shared_ptr<MemoCache> cache,
    std::shared_ptr<const kernels::SweepEvaluator> kernel)
    : model_(std::move(model)),
      cache_(std::move(cache)),
      kernel_(std::move(kernel)),
      instance_id_(next_instance_id()) {}

std::optional<std::int64_t> MemoizedVariableLoad::eval_k_max(
    double capacity) const {
  return kernel_ ? kernel_->k_max(capacity) : model_->k_max(capacity);
}

double MemoizedVariableLoad::eval_best_effort(double capacity) const {
  return kernel_ ? kernel_->best_effort(capacity)
                 : model_->best_effort(capacity);
}

double MemoizedVariableLoad::eval_reservation(double capacity) const {
  return kernel_ ? kernel_->reservation(capacity)
                 : model_->reservation(capacity);
}

double MemoizedVariableLoad::eval_total_best_effort(double capacity) const {
  return kernel_ ? kernel_->total_best_effort(capacity)
                 : model_->total_best_effort(capacity);
}

double MemoizedVariableLoad::eval_total_reservation(double capacity) const {
  return kernel_ ? kernel_->total_reservation(capacity)
                 : model_->total_reservation(capacity);
}

double MemoizedVariableLoad::eval_performance_gap(double capacity) const {
  return kernel_ ? kernel_->performance_gap(capacity)
                 : model_->performance_gap(capacity);
}

double MemoizedVariableLoad::eval_bandwidth_gap(double capacity) const {
  return kernel_ ? kernel_->bandwidth_gap(capacity)
                 : model_->bandwidth_gap(capacity);
}

double MemoizedVariableLoad::eval_blocking_fraction(double capacity) const {
  return kernel_ ? kernel_->blocking_fraction(capacity)
                 : model_->blocking_fraction(capacity);
}

std::optional<std::int64_t> MemoizedVariableLoad::k_max(double capacity) const {
  if (!cache_) return eval_k_max(capacity);
  // Encode nullopt (elastic utility) as -1: k_max is otherwise >= 1,
  // and any int64 in range is exactly representable after the argmax
  // search's own bounds (< 2^53).
  const double packed = cache_->get_or_compute2(
      "kmax", capacity, static_cast<double>(instance_id_), [&] {
        const auto k = eval_k_max(capacity);
        return k ? static_cast<double>(*k) : -1.0;
      });
  if (packed < 0.0) return std::nullopt;
  return static_cast<std::int64_t>(packed);
}

double MemoizedVariableLoad::best_effort(double capacity) const {
  if (!cache_) return eval_best_effort(capacity);
  return cache_->get_or_compute2("B", capacity,
                                 static_cast<double>(instance_id_),
                                 [&] { return eval_best_effort(capacity); });
}

double MemoizedVariableLoad::reservation(double capacity) const {
  if (!cache_) return eval_reservation(capacity);
  return cache_->get_or_compute2("R", capacity,
                                 static_cast<double>(instance_id_),
                                 [&] { return eval_reservation(capacity); });
}

double MemoizedVariableLoad::total_best_effort(double capacity) const {
  if (!cache_) return eval_total_best_effort(capacity);
  return cache_->get_or_compute2(
      "VB", capacity, static_cast<double>(instance_id_),
      [&] { return eval_total_best_effort(capacity); });
}

double MemoizedVariableLoad::total_reservation(double capacity) const {
  if (!cache_) return eval_total_reservation(capacity);
  return cache_->get_or_compute2(
      "VR", capacity, static_cast<double>(instance_id_),
      [&] { return eval_total_reservation(capacity); });
}

double MemoizedVariableLoad::performance_gap(double capacity) const {
  if (!cache_) return eval_performance_gap(capacity);
  // Same expression the model computes (max(0, R−B)) but over the
  // memoized operands, so δ after B and R costs two cache hits.
  return std::max(0.0, reservation(capacity) - best_effort(capacity));
}

double MemoizedVariableLoad::bandwidth_gap(double capacity) const {
  if (!cache_) return eval_bandwidth_gap(capacity);
  return cache_->get_or_compute2(
      "Delta", capacity, static_cast<double>(instance_id_),
      [&] { return eval_bandwidth_gap(capacity); });
}

double MemoizedVariableLoad::blocking_fraction(double capacity) const {
  if (!cache_) return eval_blocking_fraction(capacity);
  return cache_->get_or_compute2(
      "theta", capacity, static_cast<double>(instance_id_),
      [&] { return eval_blocking_fraction(capacity); });
}

void MemoizedVariableLoad::fill_grid(char tag, double lo, double hi, int n,
                                     std::span<double> out) const {
  if (n < 2 || out.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument(
        "MemoizedVariableLoad: grid needs n >= 2 and a matching span");
  }
  const auto compute = [&](std::span<double> dst) {
    // The capacity expression must match the scan in grid_refine_max
    // term for term: x_i = lo + step·i.
    const double step = (hi - lo) / (n - 1);
    for (int i = 0; i < n; ++i) {
      const double x = lo + step * i;
      dst[static_cast<std::size_t>(i)] = tag == 'B'
                                             ? eval_total_best_effort(x)
                                             : eval_total_reservation(x);
    }
  };
  if (!cache_) {
    compute(out);
    return;
  }
  const std::scoped_lock lock(grid_mutex_);
  auto [it, fresh] = grid_cache_.try_emplace(std::tuple{tag, lo, hi, n});
  if (fresh) {
    it->second.resize(static_cast<std::size_t>(n));
    compute(it->second);
  }
  std::copy(it->second.begin(), it->second.end(), out.begin());
}

void MemoizedVariableLoad::total_best_effort_grid(double lo, double hi, int n,
                                                  std::span<double> out) const {
  fill_grid('B', lo, hi, n, out);
}

void MemoizedVariableLoad::total_reservation_grid(
    double lo, double hi, int n, std::span<double> out) const {
  fill_grid('R', lo, hi, n, out);
}

}  // namespace bevr::runner
