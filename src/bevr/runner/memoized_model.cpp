#include "bevr/runner/memoized_model.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

namespace bevr::runner {

namespace {

// Distinct models may share one MemoCache (pooled stats); tag each
// instance so models with different accuracy options never alias.
std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MemoizedVariableLoad::MemoizedVariableLoad(
    std::shared_ptr<const core::VariableLoadModel> model,
    std::shared_ptr<MemoCache> cache)
    : model_(std::move(model)),
      cache_(std::move(cache)),
      instance_id_(next_instance_id()) {}

std::optional<std::int64_t> MemoizedVariableLoad::k_max(double capacity) const {
  if (!cache_) return model_->k_max(capacity);
  // Encode nullopt (elastic utility) as -1: k_max is otherwise >= 1,
  // and any int64 in range is exactly representable after the argmax
  // search's own bounds (< 2^53).
  const double packed = cache_->get_or_compute2(
      "kmax", capacity, static_cast<double>(instance_id_), [&] {
        const auto k = model_->k_max(capacity);
        return k ? static_cast<double>(*k) : -1.0;
      });
  if (packed < 0.0) return std::nullopt;
  return static_cast<std::int64_t>(packed);
}

double MemoizedVariableLoad::best_effort(double capacity) const {
  if (!cache_) return model_->best_effort(capacity);
  return cache_->get_or_compute2("B", capacity,
                                 static_cast<double>(instance_id_),
                                 [&] { return model_->best_effort(capacity); });
}

double MemoizedVariableLoad::reservation(double capacity) const {
  if (!cache_) return model_->reservation(capacity);
  return cache_->get_or_compute2("R", capacity,
                                 static_cast<double>(instance_id_),
                                 [&] { return model_->reservation(capacity); });
}

double MemoizedVariableLoad::total_best_effort(double capacity) const {
  if (!cache_) return model_->total_best_effort(capacity);
  return cache_->get_or_compute2(
      "VB", capacity, static_cast<double>(instance_id_),
      [&] { return model_->total_best_effort(capacity); });
}

double MemoizedVariableLoad::total_reservation(double capacity) const {
  if (!cache_) return model_->total_reservation(capacity);
  return cache_->get_or_compute2(
      "VR", capacity, static_cast<double>(instance_id_),
      [&] { return model_->total_reservation(capacity); });
}

double MemoizedVariableLoad::performance_gap(double capacity) const {
  if (!cache_) return model_->performance_gap(capacity);
  // Same expression the model computes (max(0, R−B)) but over the
  // memoized operands, so δ after B and R costs two cache hits.
  return std::max(0.0, reservation(capacity) - best_effort(capacity));
}

double MemoizedVariableLoad::bandwidth_gap(double capacity) const {
  if (!cache_) return model_->bandwidth_gap(capacity);
  return cache_->get_or_compute2(
      "Delta", capacity, static_cast<double>(instance_id_),
      [&] { return model_->bandwidth_gap(capacity); });
}

double MemoizedVariableLoad::blocking_fraction(double capacity) const {
  if (!cache_) return model_->blocking_fraction(capacity);
  return cache_->get_or_compute2(
      "theta", capacity, static_cast<double>(instance_id_),
      [&] { return model_->blocking_fraction(capacity); });
}

}  // namespace bevr::runner
