#include "bevr/runner/memo_cache.h"

#include <bit>
#include <utility>

namespace bevr::runner {

namespace {

// 64-bit mix (SplitMix64 finaliser) for combining hash words.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

MemoCache::MemoCache(bool enabled) : enabled_(enabled) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs_hits_ = registry.counter("runner/cache/hits");
  obs_misses_ = registry.counter("runner/cache/misses");
}

std::size_t MemoCache::KeyHash::operator()(const Key& key) const {
  std::uint64_t h = std::hash<std::string>{}(key.op);
  h = mix64(h ^ std::bit_cast<std::uint64_t>(key.a));
  h = mix64(h ^ std::bit_cast<std::uint64_t>(key.b));
  return static_cast<std::size_t>(h);
}

double MemoCache::get_or_compute(const std::string& op, double arg,
                                 const std::function<double()>& compute) {
  return lookup(Key{op, arg, 0.0}, compute);
}

double MemoCache::get_or_compute2(const std::string& op, double arg_a,
                                  double arg_b,
                                  const std::function<double()>& compute) {
  return lookup(Key{op, arg_a, arg_b}, compute);
}

double MemoCache::lookup(Key key, const std::function<double()>& compute) {
  if (!enabled_) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs_misses_.inc();
    return compute();
  }
  Shard& shard = shards_[KeyHash{}(key) % kShards];
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto found = shard.map.find(key);
    if (found != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      obs_hits_.inc();
      return found->second;
    }
  }
  // Compute outside the lock: a long argmax search must not block the
  // shard. A racing task may duplicate the work; both produce the same
  // pure value, so insertion order is immaterial.
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs_misses_.inc();
  const double value = compute();
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.emplace(std::move(key), value);
  }
  return value;
}

CacheStats MemoCache::stats() const {
  return CacheStats{hits_.load(std::memory_order_relaxed),
                    misses_.load(std::memory_order_relaxed)};
}

void MemoCache::clear() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace bevr::runner
