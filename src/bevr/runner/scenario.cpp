#include "bevr/runner/scenario.h"

#include <cmath>
#include <stdexcept>

#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/exponential_density.h"
#include "bevr/dist/pareto_density.h"
#include "bevr/dist/poisson.h"

namespace bevr::runner {

std::string to_string(LoadFamily family) {
  switch (family) {
    case LoadFamily::kPoisson: return "poisson";
    case LoadFamily::kExponential: return "exponential";
    case LoadFamily::kAlgebraic: return "algebraic";
  }
  return "?";
}

std::string to_string(UtilityFamily family) {
  switch (family) {
    case UtilityFamily::kRigid: return "rigid";
    case UtilityFamily::kAdaptiveExp: return "adaptive";
    case UtilityFamily::kPiecewiseLinear: return "pwl";
    case UtilityFamily::kElastic: return "elastic";
    case UtilityFamily::kAlgebraicTail: return "algtail";
  }
  return "?";
}

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kFixedLoad: return "fixed_load";
    case ModelKind::kVariableLoad: return "variable_load";
    case ModelKind::kContinuum: return "continuum";
    case ModelKind::kWelfare: return "welfare";
    case ModelKind::kSimulation: return "simulation";
    case ModelKind::kAdmission: return "admission";
    case ModelKind::kNet2: return "net2";
  }
  return "?";
}

std::string to_string(Net2Sweep sweep) {
  switch (sweep) {
    case Net2Sweep::kPairLoad: return "pair_load";
    case Net2Sweep::kMeanFieldCheck: return "meanfield_check";
    case Net2Sweep::kNodes: return "nodes";
    case Net2Sweep::kMeanFieldScale: return "meanfield_scale";
  }
  return "?";
}

std::string to_string(AdmissionSweep sweep) {
  switch (sweep) {
    case AdmissionSweep::kArrivalRate: return "arrival_rate";
    case AdmissionSweep::kBookAhead: return "book_ahead";
    case AdmissionSweep::kErlangCheck: return "erlang_check";
  }
  return "?";
}

std::vector<double> GridSpec::values() const {
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(points));
  if (points == 1) {
    grid.push_back(lo);
    return grid;
  }
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / (points - 1);
    grid.push_back(log_spaced ? lo * std::pow(hi / lo, t)
                              : lo + (hi - lo) * t);
  }
  return grid;
}

void ScenarioSpec::validate() const {
  if (name.empty()) throw std::invalid_argument("ScenarioSpec: empty name");
  if (grid.points < 1) {
    throw std::invalid_argument("ScenarioSpec '" + name +
                                "': grid needs at least 1 point");
  }
  if (grid.points > 1 && !(grid.lo < grid.hi)) {
    throw std::invalid_argument("ScenarioSpec '" + name +
                                "': grid requires lo < hi");
  }
  if (!(grid.lo > 0.0)) {
    throw std::invalid_argument("ScenarioSpec '" + name +
                                "': grid lower edge must be > 0");
  }
  if (grid.log_spaced && !(grid.lo > 0.0)) {
    throw std::invalid_argument("ScenarioSpec '" + name +
                                "': log grid requires lo > 0");
  }
  if (load == LoadFamily::kAlgebraic && !(load_param > 2.0)) {
    throw std::invalid_argument("ScenarioSpec '" + name +
                                "': algebraic load requires z > 2");
  }
  if (!(load_mean > 0.0)) {
    throw std::invalid_argument("ScenarioSpec '" + name +
                                "': load mean must be > 0");
  }
  if (model == ModelKind::kContinuum) {
    (void)make_continuum_model(*this);  // throws on unsupported combinations
  }
  if (model == ModelKind::kSimulation && !(sim_horizon > sim_warmup)) {
    throw std::invalid_argument("ScenarioSpec '" + name +
                                "': sim horizon must exceed warmup");
  }
  if (model == ModelKind::kAdmission) {
    admission.trace.validate();  // swept field is overridden per point
    if (util == UtilityFamily::kElastic) {
      throw std::invalid_argument(
          "ScenarioSpec '" + name +
          "': admission scenarios need an inelastic utility (the online "
          "k_max policy has no threshold for elastic apps)");
    }
    if (!(admission.capacity > 0.0) || !(admission.tick > 0.0)) {
      throw std::invalid_argument("ScenarioSpec '" + name +
                                  "': admission capacity and tick must be > 0");
    }
    if (!(admission.warmup >= 0.0) ||
        !(admission.warmup < admission.trace.horizon)) {
      throw std::invalid_argument(
          "ScenarioSpec '" + name +
          "': admission warmup must lie in [0, trace horizon)");
    }
  }
  if (model == ModelKind::kNet2) {
    net2.trace.validate();  // swept field is overridden per point
    if (util == UtilityFamily::kElastic) {
      throw std::invalid_argument(
          "ScenarioSpec '" + name +
          "': net2 scenarios need an inelastic utility (the per-link "
          "reservation policy has no k_max for elastic apps)");
    }
    if (!(net2.capacity > 0.0) || !std::isfinite(net2.capacity)) {
      throw std::invalid_argument("ScenarioSpec '" + name +
                                  "': net2 capacity must be finite and > 0");
    }
    if (!(net2.trunk_reserve >= 0.0) || !(net2.trunk_reserve < net2.capacity)) {
      throw std::invalid_argument(
          "ScenarioSpec '" + name +
          "': net2 trunk_reserve must lie in [0, capacity)");
    }
    if (net2.sweep != Net2Sweep::kMeanFieldScale &&
        (!(net2.warmup >= 0.0) || !(net2.warmup < net2.trace.horizon))) {
      throw std::invalid_argument(
          "ScenarioSpec '" + name +
          "': net2 warmup must lie in [0, trace horizon)");
    }
    if (net2.sweep != Net2Sweep::kMeanFieldScale &&
        net2.sweep != Net2Sweep::kNodes) {
      net2::TopologySpec tspec;
      tspec.kind = net2.topology;
      tspec.nodes = net2.nodes;
      tspec.capacity = net2.capacity;
      tspec.validate();
    }
    const bool mean_field = net2.sweep != Net2Sweep::kPairLoad;
    if (mean_field) {
      if (net2.topology != net2::TopologyKind::kFullMesh) {
        throw std::invalid_argument(
            "ScenarioSpec '" + name +
            "': mean-field net2 sweeps require the full-mesh topology");
      }
      if (net2.capacity != std::floor(net2.capacity) ||
          net2.trunk_reserve != std::floor(net2.trunk_reserve)) {
        throw std::invalid_argument(
            "ScenarioSpec '" + name +
            "': mean-field net2 sweeps need integral capacity and "
            "trunk_reserve (unit circuits)");
      }
      if (net2.trace.rate != 1.0) {
        throw std::invalid_argument(
            "ScenarioSpec '" + name +
            "': mean-field net2 sweeps model unit-rate circuits");
      }
      if (!(net2.mf_damping > 0.0) || !(net2.mf_damping <= 1.0) ||
          !(net2.mf_tolerance > 0.0)) {
        throw std::invalid_argument(
            "ScenarioSpec '" + name +
            "': net2 mean-field damping must lie in (0, 1] and tolerance "
            "must be > 0");
      }
    }
    if (net2.sweep == Net2Sweep::kMeanFieldScale &&
        (!(net2.mf_target_blocking > 0.0) ||
         !(net2.mf_target_blocking < 1.0))) {
      throw std::invalid_argument(
          "ScenarioSpec '" + name +
          "': net2 mf_target_blocking must lie in (0, 1)");
    }
  }
}

std::shared_ptr<const dist::DiscreteLoad> make_load(const ScenarioSpec& spec) {
  switch (spec.load) {
    case LoadFamily::kPoisson:
      return std::make_shared<dist::PoissonLoad>(spec.load_mean);
    case LoadFamily::kExponential:
      return std::make_shared<dist::ExponentialLoad>(
          dist::ExponentialLoad::with_mean(spec.load_mean));
    case LoadFamily::kAlgebraic:
      return std::make_shared<dist::AlgebraicLoad>(
          dist::AlgebraicLoad::with_mean(spec.load_param, spec.load_mean));
  }
  throw std::invalid_argument("make_load: unknown load family");
}

std::shared_ptr<const dist::DiscreteLoad> make_load_with_lambda(
    const ScenarioSpec& spec, double algebraic_lambda) {
  if (spec.load != LoadFamily::kAlgebraic) return make_load(spec);
  return std::make_shared<dist::AlgebraicLoad>(spec.load_param,
                                               algebraic_lambda);
}

std::shared_ptr<const utility::UtilityFunction> make_utility(
    const ScenarioSpec& spec) {
  switch (spec.util) {
    case UtilityFamily::kRigid:
      return std::make_shared<utility::Rigid>(spec.util_param);
    case UtilityFamily::kAdaptiveExp:
      return std::make_shared<utility::AdaptiveExp>(spec.util_param);
    case UtilityFamily::kPiecewiseLinear:
      return std::make_shared<utility::PiecewiseLinear>(spec.util_param);
    case UtilityFamily::kElastic:
      return std::make_shared<utility::Elastic>();
    case UtilityFamily::kAlgebraicTail:
      return std::make_shared<utility::AlgebraicTail>(spec.util_param);
  }
  throw std::invalid_argument("make_utility: unknown utility family");
}

std::unique_ptr<const core::ContinuumModel> make_continuum_model(
    const ScenarioSpec& spec) {
  const double beta = 1.0 / spec.load_mean;
  switch (spec.load) {
    case LoadFamily::kExponential:
      if (spec.util == UtilityFamily::kRigid && spec.util_param == 1.0) {
        return std::make_unique<core::ExponentialRigidContinuum>(beta);
      }
      if (spec.util == UtilityFamily::kPiecewiseLinear) {
        return std::make_unique<core::ExponentialAdaptiveContinuum>(
            beta, spec.util_param);
      }
      return std::make_unique<core::NumericContinuumModel>(
          std::make_shared<dist::ExponentialDensity>(beta),
          make_utility(spec));
    case LoadFamily::kAlgebraic:
      if (spec.util == UtilityFamily::kRigid && spec.util_param == 1.0) {
        return std::make_unique<core::AlgebraicRigidContinuum>(spec.load_param);
      }
      if (spec.util == UtilityFamily::kPiecewiseLinear) {
        return std::make_unique<core::AlgebraicAdaptiveContinuum>(
            spec.load_param, spec.util_param);
      }
      if (spec.util == UtilityFamily::kAlgebraicTail) {
        return std::make_unique<core::AlgebraicTailUtilityContinuum>(
            spec.load_param, spec.util_param);
      }
      return std::make_unique<core::NumericContinuumModel>(
          std::make_shared<dist::ParetoDensity>(spec.load_param),
          make_utility(spec));
    case LoadFamily::kPoisson:
      break;  // no continuum analogue in the paper
  }
  throw std::invalid_argument(
      "make_continuum_model: no continuum model for load family '" +
      to_string(spec.load) + "'");
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  spec.validate();
  if (find(spec.name) != nullptr) {
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" +
                                spec.name + "'");
  }
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<const ScenarioSpec*> ScenarioRegistry::match(
    const std::string& filter) const {
  std::vector<const ScenarioSpec*> matches;
  for (const auto& spec : specs_) {
    if (spec.name.find(filter) != std::string::npos) matches.push_back(&spec);
  }
  return matches;
}

namespace {

// The paper's figure suite. Grids mirror bench_fig{2,3,4}; welfare
// panels use the cheaper evaluation budget heavy tails demand (see
// bench/figure_panels.h).
ScenarioRegistry build_paper_suite() {
  ScenarioRegistry registry;

  const auto figure = [](std::string name, std::string description,
                         LoadFamily load, double z, UtilityFamily util,
                         double util_param, double c_hi) {
    ScenarioSpec spec;
    spec.name = std::move(name);
    spec.description = std::move(description);
    spec.model = ModelKind::kVariableLoad;
    spec.load = load;
    spec.load_param = z;
    spec.util = util;
    spec.util_param = util_param;
    spec.grid = GridSpec{10.0, c_hi, 40, false};
    return spec;
  };
  const double kappa = utility::AdaptiveExp::kPaperKappa;

  // Figure 2: Poisson load, k̄ = 100.
  registry.add(figure("fig2_rigid", "Fig 2a/b: B,R,delta,Delta — Poisson load, rigid apps",
                      LoadFamily::kPoisson, 0.0, UtilityFamily::kRigid, 1.0, 400.0));
  registry.add(figure("fig2_adaptive", "Fig 2d/e: B,R,delta,Delta — Poisson load, adaptive apps",
                      LoadFamily::kPoisson, 0.0, UtilityFamily::kAdaptiveExp, kappa, 400.0));
  // Figure 3: exponential load.
  registry.add(figure("fig3_rigid", "Fig 3a/b: B,R,delta,Delta — exponential load, rigid apps",
                      LoadFamily::kExponential, 0.0, UtilityFamily::kRigid, 1.0, 800.0));
  registry.add(figure("fig3_adaptive", "Fig 3d/e: B,R,delta,Delta — exponential load, adaptive apps",
                      LoadFamily::kExponential, 0.0, UtilityFamily::kAdaptiveExp, kappa, 800.0));
  // Figure 4: algebraic load, z = 3.
  registry.add(figure("fig4_rigid", "Fig 4a/b: B,R,delta,Delta — algebraic load (z=3), rigid apps",
                      LoadFamily::kAlgebraic, 3.0, UtilityFamily::kRigid, 1.0, 800.0));
  registry.add(figure("fig4_adaptive", "Fig 4d/e: B,R,delta,Delta — algebraic load (z=3), adaptive apps",
                      LoadFamily::kAlgebraic, 3.0, UtilityFamily::kAdaptiveExp, kappa, 800.0));

  // Welfare panels (c/f of each figure): γ(p) over a log price grid.
  const auto welfare = [&figure](std::string name, std::string description,
                                 LoadFamily load, double z, UtilityFamily util,
                                 double util_param, double p_lo, int points) {
    ScenarioSpec spec = figure(std::move(name), std::move(description), load,
                               z, util, util_param, 0.0);
    spec.model = ModelKind::kWelfare;
    spec.grid = GridSpec{p_lo, 0.4, points, true};
    if (load == LoadFamily::kAlgebraic) {
      // Heavy tails drive huge optimal capacities at small p.
      spec.eval.tail_eps = 1e-10;
      spec.eval.direct_budget = 16'384;
    }
    return spec;
  };
  registry.add(welfare("fig2_welfare_rigid", "Fig 2c: C(p), W(p), gamma(p) — Poisson, rigid",
                       LoadFamily::kPoisson, 0.0, UtilityFamily::kRigid, 1.0, 1e-3, 9));
  registry.add(welfare("fig2_welfare_adaptive", "Fig 2f: C(p), W(p), gamma(p) — Poisson, adaptive",
                       LoadFamily::kPoisson, 0.0, UtilityFamily::kAdaptiveExp, kappa, 1e-3, 9));
  registry.add(welfare("fig3_welfare_rigid", "Fig 3c: C(p), W(p), gamma(p) — exponential, rigid",
                       LoadFamily::kExponential, 0.0, UtilityFamily::kRigid, 1.0, 1e-3, 9));
  registry.add(welfare("fig3_welfare_adaptive", "Fig 3f: C(p), W(p), gamma(p) — exponential, adaptive",
                       LoadFamily::kExponential, 0.0, UtilityFamily::kAdaptiveExp, kappa, 1e-3, 9));
  registry.add(welfare("fig4_welfare_rigid", "Fig 4c: C(p), W(p), gamma(p) — algebraic z=3, rigid",
                       LoadFamily::kAlgebraic, 3.0, UtilityFamily::kRigid, 1.0, 3e-3, 7));
  registry.add(welfare("fig4_welfare_adaptive", "Fig 4f: C(p), W(p), gamma(p) — algebraic z=3, adaptive",
                       LoadFamily::kAlgebraic, 3.0, UtilityFamily::kAdaptiveExp, kappa, 3e-3, 7));

  // Fixed-load curves (paper §2 / Figure 1 context): k_max(C) and the
  // total utility it achieves, discrete vs continuum threshold.
  {
    ScenarioSpec spec;
    spec.name = "fixed_load_rigid";
    spec.description = "Sec 2: k_max(C), V(k_max;C) — rigid apps";
    spec.model = ModelKind::kFixedLoad;
    spec.util = UtilityFamily::kRigid;
    spec.util_param = 1.0;
    spec.grid = GridSpec{10.0, 400.0, 40, false};
    registry.add(spec);
    spec.name = "fixed_load_adaptive";
    spec.description = "Sec 2: k_max(C), V(k_max;C) — adaptive apps";
    spec.util = UtilityFamily::kAdaptiveExp;
    spec.util_param = kappa;
    registry.add(spec);
  }

  // Continuum cross-checks (paper §3.2–3.3 closed forms).
  {
    ScenarioSpec spec;
    spec.model = ModelKind::kContinuum;
    spec.grid = GridSpec{10.0, 800.0, 40, false};
    spec.name = "continuum_exp_rigid";
    spec.description = "Sec 3.2: closed-form B,R,delta,Delta — exponential density, rigid";
    spec.load = LoadFamily::kExponential;
    spec.util = UtilityFamily::kRigid;
    spec.util_param = 1.0;
    registry.add(spec);
    spec.name = "continuum_exp_adaptive";
    spec.description = "Sec 3.2: closed-form B,R,delta,Delta — exponential density, piecewise-linear";
    spec.util = UtilityFamily::kPiecewiseLinear;
    spec.util_param = 0.5;
    registry.add(spec);
    spec.name = "continuum_alg_rigid";
    spec.description = "Sec 3.3: closed-form B,R,delta,Delta — Pareto density z=2.5, rigid";
    spec.load = LoadFamily::kAlgebraic;
    spec.load_param = 2.5;
    spec.util = UtilityFamily::kRigid;
    spec.util_param = 1.0;
    registry.add(spec);
    spec.name = "continuum_alg_adaptive";
    spec.description = "Sec 3.3: closed-form B,R,delta,Delta — Pareto density z=2.5, piecewise-linear";
    spec.util = UtilityFamily::kPiecewiseLinear;
    spec.util_param = 0.5;
    registry.add(spec);
  }

  // Simulator vs model: M/M/∞ occupancy is exactly the Poisson case.
  {
    ScenarioSpec spec;
    spec.name = "sim_mm_inf_validation";
    spec.description = "Sim vs model: empirical B,R against analytic (Poisson load, rigid)";
    spec.model = ModelKind::kSimulation;
    spec.load = LoadFamily::kPoisson;
    spec.load_mean = 100.0;
    spec.util = UtilityFamily::kRigid;
    spec.util_param = 1.0;
    spec.grid = GridSpec{60.0, 180.0, 7, false};
    spec.sim_horizon = 2000.0;
    spec.sim_warmup = 200.0;
    registry.add(spec);
  }

  // Admission-control scenarios: three policies (best effort, online
  // k_max, malleable advance booking) replayed on bit-identical traces
  // per grid point, plus an M/M/C/C cross-check against Erlang-B.
  {
    ScenarioSpec spec;
    spec.name = "admission_policy_load";
    spec.description =
        "Admission: best-effort vs online k_max vs advance booking across "
        "arrival rates (shared traces)";
    spec.model = ModelKind::kAdmission;
    spec.util = UtilityFamily::kRigid;
    spec.util_param = 1.0;
    spec.grid = GridSpec{40.0, 160.0, 7, false};
    spec.admission.sweep = AdmissionSweep::kArrivalRate;
    spec.admission.trace.kind = admission::TraceKind::kPoisson;
    spec.admission.trace.mean_duration = 1.0;
    spec.admission.trace.rate = 1.0;
    spec.admission.trace.book_ahead = 1.0;
    spec.admission.trace.cancel_p = 0.05;
    spec.admission.trace.horizon = 300.0;
    spec.admission.warmup = 30.0;
    spec.admission.min_rate_fraction = 0.5;
    spec.admission.max_start_shift = 2.0;
    registry.add(spec);

    spec.name = "admission_bookahead_sweep";
    spec.description =
        "Admission: policy utilities vs mean book-ahead lead at fixed "
        "overload (adaptive apps, counteroffers on)";
    spec.util = UtilityFamily::kPiecewiseLinear;
    spec.util_param = 0.5;
    spec.grid = GridSpec{0.25, 8.0, 7, true};
    spec.admission.sweep = AdmissionSweep::kBookAhead;
    spec.admission.trace.arrival_rate = 110.0;
    spec.admission.trace.cancel_p = 0.1;
    spec.admission.min_rate_fraction = 0.6;
    registry.add(spec);

    spec.name = "admission_mmcc_erlang";
    spec.description =
        "Admission: rigid immediate reservations vs Erlang-B blocking "
        "(M/M/C/C cross-check)";
    spec.util = UtilityFamily::kRigid;
    spec.util_param = 1.0;
    spec.grid = GridSpec{60.0, 140.0, 5, false};
    spec.admission.sweep = AdmissionSweep::kErlangCheck;
    spec.admission.trace.book_ahead = 0.0;
    spec.admission.trace.cancel_p = 0.0;
    spec.admission.trace.horizon = 400.0;
    spec.admission.warmup = 50.0;
    registry.add(spec);
  }

  // Network (net2) scenarios: multi-link policies replayed on
  // bit-identical traces per grid point, validated against the Erlang
  // fixed point, plus a pure mean-field sweep that reaches operating
  // points the simulator cannot.
  {
    ScenarioSpec spec;
    spec.name = "net2_policy_load";
    spec.description =
        "Net2: best effort vs per-link reservation vs DAR (r=0 and r=2) "
        "across per-pair load, full mesh N=6 (shared traces)";
    spec.model = ModelKind::kNet2;
    spec.util = UtilityFamily::kRigid;
    spec.util_param = 1.0;
    spec.grid = GridSpec{2.0, 14.0, 7, false};
    spec.net2.sweep = Net2Sweep::kPairLoad;
    spec.net2.topology = net2::TopologyKind::kFullMesh;
    spec.net2.nodes = 6;
    spec.net2.capacity = 10.0;
    spec.net2.trunk_reserve = 2.0;
    spec.net2.trace.mean_duration = 1.0;
    spec.net2.trace.rate = 1.0;
    spec.net2.trace.horizon = 200.0;
    spec.net2.warmup = 20.0;
    registry.add(spec);

    spec.name = "net2_fixed_point_check";
    spec.description =
        "Net2: DAR (r=2) simulation blocking vs Erlang fixed point across "
        "per-pair load, full mesh N=8";
    spec.grid = GridSpec{4.0, 10.0, 4, false};
    spec.net2.sweep = Net2Sweep::kMeanFieldCheck;
    spec.net2.nodes = 8;
    spec.net2.trace.horizon = 400.0;
    spec.net2.warmup = 40.0;
    registry.add(spec);

    spec.name = "net2_blocking_vs_n";
    spec.description =
        "Net2: DAR (r=2) blocking vs node count against the N-independent "
        "mean-field limit (Fayolle et al. asymptotics)";
    spec.grid = GridSpec{4.0, 10.0, 4, false};
    spec.net2.sweep = Net2Sweep::kNodes;
    spec.net2.trace.pair_arrival_rate = 7.0;
    spec.net2.trace.horizon = 300.0;
    spec.net2.warmup = 30.0;
    registry.add(spec);

    spec.name = "net2_meanfield_scale";
    spec.description =
        "Net2: pure Erlang fixed point across link capacity with per-pair "
        "load placed at 1% Erlang-B blocking (the millions-of-flows path)";
    spec.grid = GridSpec{10.0, 10000.0, 7, true};
    spec.net2.sweep = Net2Sweep::kMeanFieldScale;
    spec.net2.trunk_reserve = 2.0;
    spec.net2.mf_target_blocking = 0.01;
    registry.add(spec);
  }

  return registry;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = build_paper_suite();
  return registry;
}

}  // namespace bevr::runner
