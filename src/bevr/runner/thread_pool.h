// Work-stealing-free, deterministic-friendly thread pool.
//
// The runner's contract is that *scheduling never affects results*:
// parallel_for hands workers task indices from an atomic counter, and
// every task writes only to its own index's output slot, so the final
// result vector is identical at any thread count. The pool itself is a
// plain condition-variable task queue — no affinity, no priorities —
// sized for coarse-grained model-evaluation tasks (milliseconds to
// seconds each), not micro-tasks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "bevr/obs/metrics.h"

namespace bevr::runner {

class ThreadPool {
 public:
  /// Hard ceiling on pool size: requests above it are clamped, so a
  /// bogus count (say -1 forced through unsigned) cannot exhaust the
  /// machine's thread limit.
  static constexpr unsigned kMaxThreads = 256;

  /// `threads` worker threads; 0 means std::thread::hardware_concurrency
  /// (at least 1), and anything above kMaxThreads is clamped to it. A
  /// pool of size 1 still runs tasks on its worker, so submission order
  /// == execution order.
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  /// One queued task plus the observability it carries: the enqueue
  /// timestamp is 0 when metrics were disabled at submission, so the
  /// dequeue side pays nothing for disabled instrumentation.
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void worker_loop();

  // Pool behaviour under load, reported via obs::MetricsRegistry:
  // tasks executed, time spent queued, time spent executing, and the
  // queue depth seen by each submit.
  obs::Counter tasks_executed_;
  obs::Histogram queue_wait_us_;
  obs::Histogram execute_us_;
  obs::Histogram queue_depth_;

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::uint64_t in_flight_ = 0;  ///< queued + currently executing
  bool stopping_ = false;
};

/// Run body(i) for i in [0, count) on the pool's workers. Indices are
/// claimed from a shared atomic counter; each call sees every index
/// exactly once. Blocks until all iterations finish. If any iteration
/// throws, the first exception (by completion order) is rethrown here
/// after the remaining iterations are drained. With a null pool or
/// count <= 1 the loop runs inline on the calling thread.
void parallel_for(ThreadPool* pool, std::int64_t count,
                  const std::function<void(std::int64_t)>& body);

}  // namespace bevr::runner
