// Memoizing façade over the discrete variable-load model.
//
// Guarantees: every accessor returns a value bitwise-equal to the
// underlying model's (the cache stores results, never approximations),
// and all methods are safe to call concurrently (VariableLoadModel is
// const/stateless after construction; the cache is internally locked).
// The big wins in practice:
//  * k_max(C) — one integer argmax shared by B, R, δ and blocking at
//    the same capacity, and by the Δ(C) root solve probing R(C);
//  * total_* — the welfare maximiser's dense V(C) grids overlap
//    heavily across neighbouring prices;
//  * bandwidth_gap — Δ at a repeated capacity is a whole root solve.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "bevr/core/variable_load.h"
#include "bevr/runner/memo_cache.h"

namespace bevr::runner {

class MemoizedVariableLoad {
 public:
  /// `cache` may be shared across models for pooled statistics; pass
  /// nullptr to disable memoization entirely (pure pass-through).
  MemoizedVariableLoad(std::shared_ptr<const core::VariableLoadModel> model,
                       std::shared_ptr<MemoCache> cache);

  [[nodiscard]] double mean_load() const { return model_->mean_load(); }
  [[nodiscard]] std::optional<std::int64_t> k_max(double capacity) const;
  [[nodiscard]] double best_effort(double capacity) const;
  [[nodiscard]] double reservation(double capacity) const;
  [[nodiscard]] double total_best_effort(double capacity) const;
  [[nodiscard]] double total_reservation(double capacity) const;
  [[nodiscard]] double performance_gap(double capacity) const;
  [[nodiscard]] double bandwidth_gap(double capacity) const;
  [[nodiscard]] double blocking_fraction(double capacity) const;

  [[nodiscard]] const core::VariableLoadModel& model() const { return *model_; }

 private:
  std::shared_ptr<const core::VariableLoadModel> model_;
  std::shared_ptr<MemoCache> cache_;
  std::uint64_t instance_id_;  ///< disambiguates models sharing a cache
};

}  // namespace bevr::runner
