// Memoizing façade over the discrete variable-load model.
//
// Guarantees: every accessor returns a value bitwise-equal to the
// underlying model's (the cache stores results, never approximations),
// and all methods are safe to call concurrently (VariableLoadModel is
// const/stateless after construction; the cache is internally locked).
// The big wins in practice:
//  * k_max(C) — one integer argmax shared by B, R, δ and blocking at
//    the same capacity, and by the Δ(C) root solve probing R(C);
//  * total_* — the welfare maximiser's dense V(C) grids overlap
//    heavily across neighbouring prices;
//  * bandwidth_gap — Δ at a repeated capacity is a whole root solve.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <tuple>
#include <vector>

#include "bevr/core/variable_load.h"
#include "bevr/kernels/sweep_evaluator.h"
#include "bevr/runner/memo_cache.h"

namespace bevr::runner {

class MemoizedVariableLoad {
 public:
  /// `cache` may be shared across models for pooled statistics; pass
  /// nullptr to disable memoization entirely (pure pass-through).
  MemoizedVariableLoad(std::shared_ptr<const core::VariableLoadModel> model,
                       std::shared_ptr<MemoCache> cache);

  /// Kernel-accelerated variant: cache misses are computed through the
  /// SweepEvaluator instead of the scalar model. The evaluator's
  /// equivalence contract (bit-identical results) keeps the façade's
  /// own guarantee intact, so cached values from either path agree.
  MemoizedVariableLoad(
      std::shared_ptr<const core::VariableLoadModel> model,
      std::shared_ptr<MemoCache> cache,
      std::shared_ptr<const kernels::SweepEvaluator> kernel);

  [[nodiscard]] double mean_load() const { return model_->mean_load(); }
  [[nodiscard]] std::optional<std::int64_t> k_max(double capacity) const;
  [[nodiscard]] double best_effort(double capacity) const;
  [[nodiscard]] double reservation(double capacity) const;
  [[nodiscard]] double total_best_effort(double capacity) const;
  [[nodiscard]] double total_reservation(double capacity) const;
  [[nodiscard]] double performance_gap(double capacity) const;
  [[nodiscard]] double bandwidth_gap(double capacity) const;
  [[nodiscard]] double blocking_fraction(double capacity) const;

  /// Bulk total-utility evaluation over the equally spaced grid
  /// lo + step·i, step = (hi − lo)/(n − 1) — the welfare maximiser's
  /// scan stage (numerics::GridEvalFn contract). out[i] receives the
  /// exact double the scalar accessor returns at that capacity. Whole
  /// grids are cached by (lo, hi, n): the maximiser re-scans the same
  /// grid once per root-solve iterate, so after the first fill every
  /// scan is a flat-vector copy.
  void total_best_effort_grid(double lo, double hi, int n,
                              std::span<double> out) const;
  void total_reservation_grid(double lo, double hi, int n,
                              std::span<double> out) const;

  [[nodiscard]] const core::VariableLoadModel& model() const { return *model_; }

  /// The kernel evaluator computing cache misses, or nullptr when this
  /// façade runs the scalar path.
  [[nodiscard]] const kernels::SweepEvaluator* kernel() const {
    return kernel_.get();
  }

 private:
  // Compute-on-miss dispatch: kernel when present, scalar model
  // otherwise. Both return identical doubles by contract.
  [[nodiscard]] std::optional<std::int64_t> eval_k_max(double capacity) const;
  [[nodiscard]] double eval_best_effort(double capacity) const;
  [[nodiscard]] double eval_reservation(double capacity) const;
  [[nodiscard]] double eval_total_best_effort(double capacity) const;
  [[nodiscard]] double eval_total_reservation(double capacity) const;
  [[nodiscard]] double eval_performance_gap(double capacity) const;
  [[nodiscard]] double eval_bandwidth_gap(double capacity) const;
  [[nodiscard]] double eval_blocking_fraction(double capacity) const;

  /// Shared fill-then-copy helper for the *_grid accessors.
  void fill_grid(char tag, double lo, double hi, int n,
                 std::span<double> out) const;

  std::shared_ptr<const core::VariableLoadModel> model_;
  std::shared_ptr<MemoCache> cache_;
  std::shared_ptr<const kernels::SweepEvaluator> kernel_;
  std::uint64_t instance_id_;  ///< disambiguates models sharing a cache
  /// Whole-grid memo for the *_grid accessors, keyed by (tag, lo, hi,
  /// n). Tiny (a handful of distinct grids per run), so an ordered map
  /// under one mutex beats anything fancier.
  mutable std::mutex grid_mutex_;
  mutable std::map<std::tuple<char, double, double, int>,
                   std::vector<double>>
      grid_cache_;
};

}  // namespace bevr::runner
