#include "bevr/runner/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "bevr/obs/trace.h"

namespace bevr::runner {

ThreadPool::ThreadPool(unsigned threads) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  tasks_executed_ = registry.counter("runner/pool/tasks");
  queue_wait_us_ = registry.histogram("runner/pool/queue_wait_us");
  execute_us_ = registry.histogram("runner/pool/execute_us");
  queue_depth_ = registry.histogram("runner/pool/queue_depth",
                                    obs::HistogramSpec::exponential(1.0, 2.0, 16));
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // Grid sweeps never benefit from more lanes than this, and an
  // unchecked count (e.g. -1 wrapped through unsigned) would exhaust
  // the machine before the first task runs.
  threads = std::min(threads, kMaxThreads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      // Stable Perfetto tracks: pool workers at 100+, so a trace of a
      // sweep shows "runner/pool0..N" rows in a fixed order every run.
      obs::TraceCollector::set_thread_track("runner/pool" + std::to_string(i),
                                            100 + i);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const bool observed = queue_depth_.live();
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push(Task{std::move(task), observed ? obs::now_ns() : 0});
    ++in_flight_;
    depth = queue_.size();
  }
  work_ready_.notify_one();
  if (observed) queue_depth_.observe(static_cast<double>(depth));
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    // enqueue_ns == 0 marks a submission made with metrics disabled;
    // such tasks carry no instrumentation cost on this side either.
    if (task.enqueue_ns != 0) {
      queue_wait_us_.observe(
          static_cast<double>(obs::now_ns() - task.enqueue_ns) * 1e-3);
      const obs::Histogram::Timer timer(execute_us_);
      task.fn();  // tasks are noexcept wrappers built by parallel_for
      tasks_executed_.inc();
    } else {
      task.fn();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool* pool, std::int64_t count,
                  const std::function<void(std::int64_t)>& body) {
  if (count <= 0) return;
  if (pool == nullptr || pool->size() == 0 || count == 1) {
    for (std::int64_t i = 0; i < count; ++i) body(i);
    return;
  }

  struct Shared {
    std::atomic<std::int64_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto shared = std::make_shared<Shared>();

  // One chunk-worker per pool thread; each drains indices until the
  // counter runs out. Never more outstanding tasks than workers.
  const unsigned lanes =
      static_cast<unsigned>(std::min<std::int64_t>(count, pool->size()));
  for (unsigned lane = 0; lane < lanes; ++lane) {
    pool->submit([shared, count, &body] {
      for (;;) {
        const std::int64_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        if (shared->failed.load(std::memory_order_relaxed)) continue;  // drain
        try {
          body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(shared->error_mutex);
          if (!shared->failed.exchange(true)) {
            shared->error = std::current_exception();
          }
        }
      }
    });
  }
  pool->wait_idle();
  if (shared->failed.load()) std::rethrow_exception(shared->error);
}

}  // namespace bevr::runner
