// Blocking convenience handle over a Server.
//
// The Server's native interface is future-based; most callers (the
// examples, the load generator's closed-loop workers) want "evaluate
// this, give me the Response, enforce my budget". Client packages that:
// a relative timeout becomes an absolute deadline at submission, so the
// budget covers queueing *and* evaluation, exactly as the service
// accounts it.
#pragma once

#include <chrono>

#include "bevr/service/request.h"

namespace bevr::service {

class Server;

class Client {
 public:
  /// The server must outlive the client.
  explicit Client(Server& server) : server_(&server) {}

  /// Submit and wait. kNoTimeout waits however long the queue takes.
  static constexpr std::chrono::nanoseconds kNoTimeout{0};
  [[nodiscard]] Response evaluate(
      const Query& query,
      std::chrono::nanoseconds timeout = kNoTimeout) const;

 private:
  Server* server_;
};

}  // namespace bevr::service
