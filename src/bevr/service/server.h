// In-process concurrent evaluation service over the kernels/runner
// stack: the "front door" the compute layers below it never had.
//
// Architecture (one Server):
//
//   submit() ──► admission ──► bounded FIFO of *tickets* ──► workers
//                 │  │                │
//                 │  │                └─ coalescing: an identical query
//                 │  │                   (same batch key, capacity, Δ
//                 │  │                   flag) already pending attaches
//                 │  │                   as an extra waiter instead of
//                 │  │                   a new ticket
//                 │  └─ queue full → kOverloaded, immediately
//                 └─ deadline already passed → kDeadlineExceeded
//
// A worker claims the front ticket plus every queued ticket sharing
// its batch key (up to max_batch), evaluates all their capacities in
// one SweepEvaluator::evaluate_grid call over the sorted batch, and
// fans each row out to that ticket's waiters. Waiters whose deadline
// passed while queued resolve kDeadlineExceeded without costing any
// evaluation. Results are bit-identical to direct runner evaluation —
// the service changes scheduling, never values.
//
// Every submitted request resolves exactly once with kOk, kOverloaded
// or kDeadlineExceeded; shutdown drains the queue before joining, so
// no admitted request is ever lost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "bevr/obs/metrics.h"
#include "bevr/obs/slo.h"
#include "bevr/obs/trace_context.h"
#include "bevr/obs/window.h"
#include "bevr/runner/memo_cache.h"
#include "bevr/runner/scenario.h"
#include "bevr/service/request.h"

namespace bevr::service {

class Server {
 public:
  struct Options {
    /// Worker threads; 0 = hardware concurrency (at least 1).
    unsigned workers = 2;
    /// Bound on *distinct pending evaluations* (tickets). Coalesced
    /// waiters ride free — that is the point of coalescing.
    std::size_t queue_capacity = 256;
    /// Max rows per shared evaluate_grid call.
    std::size_t max_batch = 64;
    /// Evaluate through bevr::kernels (batched tables, warm k_max).
    /// Off = scalar MemoizedVariableLoad path; same values either way.
    bool use_kernels = true;
    /// Memo shared across every scenario this server builds (λ-
    /// calibrations, point memos). Created internally when null.
    std::shared_ptr<runner::MemoCache> cache;
    /// Scenario namespace; the built-in paper registry when null. The
    /// pointee must outlive the server.
    const runner::ScenarioRegistry* registry = nullptr;
    /// Start with workers gated: requests queue but are not claimed
    /// until resume(). For deterministic tests of queue-state paths
    /// (coalescing, overflow, in-queue expiry).
    bool paused = false;
    /// Seed for deriving per-request trace ids (TraceContext::derive):
    /// same seed + same submit order = byte-identical trace ids.
    std::uint64_t trace_seed = 0;
    /// Consecutive overload rejections that constitute an overload
    /// storm: crossing it records a STORM flight event and fires the
    /// flight recorder's auto-dump latch. 0 disables detection.
    std::size_t overload_storm_threshold = 0;
    /// Required good fractions for the SLO trackers: deadline = the
    /// fraction of resolved requests that must meet their deadline,
    /// admission = the fraction of submits that must not be shed.
    double deadline_slo_target = 0.99;
    double admission_slo_target = 0.95;
  };

  explicit Server(Options options);
  /// Drains and joins (shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one request. Returns a future that is always eventually
  /// resolved (kOk / kOverloaded / kDeadlineExceeded) — never
  /// abandoned. Throws std::invalid_argument for a scenario name the
  /// registry does not know.
  [[nodiscard]] std::future<Response> submit(const Query& query,
                                             Deadline deadline = kNoDeadline);

  /// Release a paused server's workers.
  void resume();

  /// Stop admitting (further submits resolve kOverloaded), drain every
  /// queued ticket, join the workers. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Rolling view of response latency (µs) over the last ~10 seconds,
  /// as opposed to the cumulative service/latency_us histogram.
  [[nodiscard]] obs::WindowSnapshot rolling_latency() const {
    return latency_window_.snapshot();
  }

  /// Coalescing/batching identity of a scenario's evaluation context —
  /// the kernels batch key when kernels are on (content-fingerprinted,
  /// so distinct scenario names sharing one model coalesce), an exact
  /// spec-field key otherwise. Builds the context on first touch, like
  /// submit does. Exposed for tests and capacity planning.
  [[nodiscard]] std::string scenario_key(const std::string& scenario);

 private:
  struct Entry;       // one evaluation context (model + kernel + key)
  struct Waiter;      // one caller's promise + deadline
  struct Ticket;      // one distinct pending evaluation
  struct CoalesceKey {
    const Entry* entry = nullptr;
    std::uint64_t capacity_bits = 0;
    bool with_gap = false;
    bool operator==(const CoalesceKey&) const = default;
  };
  struct CoalesceKeyHash {
    std::size_t operator()(const CoalesceKey& key) const noexcept;
  };

  [[nodiscard]] std::shared_ptr<const Entry> resolve_entry(
      const std::string& scenario);
  void worker_loop(unsigned worker_index);
  /// Evaluate a claimed batch and resolve every waiter. Called with no
  /// locks held.
  void process_batch(std::vector<std::unique_ptr<Ticket>> batch);
  void respond(Waiter& waiter, Response response);

  Options options_;

  // Scenario → evaluation context, built lazily; contexts with equal
  // batch keys are shared so queries coalesce across scenario names.
  mutable std::mutex entries_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Entry>> by_scenario_;
  std::unordered_map<std::string, std::shared_ptr<const Entry>> by_key_;

  // Queue state. pending_ indexes the tickets currently in queue_ so
  // an identical query attaches instead of enqueueing.
  mutable std::mutex queue_mutex_;
  std::condition_variable work_ready_;
  std::deque<std::unique_ptr<Ticket>> queue_;
  std::unordered_map<CoalesceKey, Ticket*, CoalesceKeyHash> pending_;
  bool paused_ = false;
  bool stopping_ = false;

  std::vector<std::thread> workers_;

  // Observability (global registry; all no-ops when disabled).
  obs::Counter requests_;
  obs::Counter admitted_;
  obs::Counter coalesced_;
  obs::Counter rejected_overload_;
  obs::Counter rejected_shutdown_;
  obs::Counter deadline_at_submit_;
  obs::Counter deadline_in_queue_;
  obs::Counter responses_ok_;
  obs::Counter evaluations_;
  obs::Counter rows_evaluated_;
  obs::Gauge queue_depth_gauge_;
  obs::Histogram queue_us_;
  obs::Histogram latency_us_;
  obs::Histogram eval_us_;
  obs::Histogram batch_rows_;

  // Diagnosis layer: deterministic request ids, storm detection, SLO
  // burn tracking and a rolling latency window. All side channels —
  // none of these feed back into scheduling or values.
  std::atomic<std::uint64_t> next_request_{0};
  std::atomic<std::uint64_t> consecutive_overloads_{0};
  obs::SloTracker* deadline_slo_ = nullptr;   // registry-owned
  obs::SloTracker* admission_slo_ = nullptr;  // registry-owned
  obs::RollingWindow latency_window_ = obs::RollingWindow::over_seconds(10.0);
};

}  // namespace bevr::service
