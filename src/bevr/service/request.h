// Request/response vocabulary of the evaluation service.
//
// A Query names a registry scenario and one capacity; the Server
// answers it with the same columns a runner variable-load sweep row
// carries (B, R, δ, Δ, k_max, θ) plus the welfare totals V_B/V_R —
// bit-identical to direct evaluation, per the kernels equivalence
// contract. Every submitted request resolves with exactly one of the
// three terminal statuses; the service never drops a request on the
// floor or blocks it indefinitely.
//
// The shedding policy deliberately echoes the paper's subject: like
// the reservation architecture it models, a loaded server rejects
// excess requests cleanly (kOverloaded at admission, kDeadlineExceeded
// for requests that aged out in the queue) instead of degrading every
// request a little.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace bevr::service {

using Clock = std::chrono::steady_clock;
using Deadline = Clock::time_point;

/// "No deadline": the request waits as long as the queue requires.
inline constexpr Deadline kNoDeadline = Deadline::max();

enum class StatusCode {
  kOk,                ///< evaluated; the value fields are valid
  kOverloaded,        ///< shed at admission: queue full or server stopped
  kDeadlineExceeded,  ///< expired before evaluation started
};

[[nodiscard]] std::string to_string(StatusCode status);

/// One evaluation request: a named registry scenario pins the model
/// (load family, utility family, accuracy options); the capacity picks
/// the point. Queries for the expensive root-solved Δ(C) column opt in
/// explicitly — the flag is part of the coalescing key, so a cheap
/// query never waits on another query's root solve.
struct Query {
  std::string scenario;
  double capacity = 100.0;
  bool with_bandwidth_gap = false;
};

/// The service's answer. Value fields mirror a runner variable-load
/// row and are valid only under kOk; the provenance fields are always
/// set.
struct Response {
  StatusCode status = StatusCode::kOverloaded;
  double capacity = 0.0;

  // -- evaluated columns (kOk only) --------------------------------------
  double best_effort = 0.0;           ///< B(C)
  double reservation = 0.0;           ///< R(C)
  double performance_gap = 0.0;       ///< δ(C) = R − B
  double bandwidth_gap = 0.0;         ///< Δ(C); 0 unless requested
  double k_max = -1.0;                ///< −1 encodes "elastic: no threshold"
  double blocking = 0.0;              ///< θ(C)
  double total_best_effort = 0.0;     ///< V_B(C) = k̄·B(C)
  double total_reservation = 0.0;     ///< V_R(C) = k̄·R(C)

  // -- provenance --------------------------------------------------------
  bool coalesced = false;      ///< shared a ticket with identical queries
  std::uint32_t batch_rows = 0;  ///< rows in the kernel call that served this
  double queue_us = 0.0;       ///< admission → evaluation start
  double total_us = 0.0;       ///< admission → response resolution
  /// Deterministic causal id of this request (obs::TraceContext::
  /// derive of the server's trace_seed and the submit index): the key
  /// for finding this request's spans in a trace export or flight
  /// dump. Always set, even when tracing is disabled.
  std::uint64_t trace_id = 0;
};

}  // namespace bevr::service
