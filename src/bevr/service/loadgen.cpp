#include "bevr/service/loadgen.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bevr/service/server.h"

namespace bevr::service {

namespace {

struct Tally {
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t coalesced = 0;
  std::vector<double> ok_latencies_us;

  void absorb(const Response& response) {
    switch (response.status) {
      case StatusCode::kOk:
        ++ok;
        if (response.coalesced) ++coalesced;
        ok_latencies_us.push_back(response.total_us);
        break;
      case StatusCode::kOverloaded: ++overloaded; break;
      case StatusCode::kDeadlineExceeded: ++deadline_exceeded; break;
    }
  }

  void merge(Tally&& other) {
    ok += other.ok;
    overloaded += other.overloaded;
    deadline_exceeded += other.deadline_exceeded;
    coalesced += other.coalesced;
    ok_latencies_us.insert(ok_latencies_us.end(),
                           other.ok_latencies_us.begin(),
                           other.ok_latencies_us.end());
  }
};

double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

LoadGenReport finalize(Tally tally, double wall_seconds) {
  LoadGenReport report;
  report.ok = tally.ok;
  report.overloaded = tally.overloaded;
  report.deadline_exceeded = tally.deadline_exceeded;
  report.coalesced = tally.coalesced;
  report.wall_seconds = wall_seconds;
  report.throughput_rps =
      wall_seconds > 0.0 ? static_cast<double>(tally.ok) / wall_seconds : 0.0;
  std::sort(tally.ok_latencies_us.begin(), tally.ok_latencies_us.end());
  report.p50_us = sorted_quantile(tally.ok_latencies_us, 0.50);
  report.p95_us = sorted_quantile(tally.ok_latencies_us, 0.95);
  report.p99_us = sorted_quantile(tally.ok_latencies_us, 0.99);
  report.max_us =
      tally.ok_latencies_us.empty() ? 0.0 : tally.ok_latencies_us.back();
  return report;
}

void validate(const LoadGenOptions& options) {
  if (options.queries.empty()) {
    throw std::invalid_argument("loadgen: queries must be non-empty");
  }
  if (options.threads == 0) {
    throw std::invalid_argument("loadgen: threads must be positive");
  }
}

Deadline request_deadline(const LoadGenOptions& options) {
  return options.deadline.count() > 0 ? Clock::now() + options.deadline
                                      : kNoDeadline;
}

}  // namespace

LoadGenReport run_closed_loop(Server& server, const LoadGenOptions& options) {
  validate(options);
  std::vector<Tally> tallies(options.threads);
  std::vector<std::thread> clients;
  clients.reserve(options.threads);
  const auto start = Clock::now();
  for (unsigned t = 0; t < options.threads; ++t) {
    clients.emplace_back([&, t] {
      Tally& tally = tallies[t];
      tally.ok_latencies_us.reserve(options.requests_per_thread);
      // Per-thread phase offset: threads start on different queries,
      // then sweep the same cycle — collisions (and hence coalescing
      // opportunities) arise from timing, not from an identical
      // schedule.
      for (std::uint64_t i = 0; i < options.requests_per_thread; ++i) {
        const Query& query =
            options.queries[(t + i) % options.queries.size()];
        tally.absorb(server.submit(query, request_deadline(options)).get());
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const std::chrono::duration<double> wall = Clock::now() - start;

  Tally total;
  for (Tally& tally : tallies) total.merge(std::move(tally));
  return finalize(std::move(total), wall.count());
}

LoadGenReport run_open_loop(Server& server, const LoadGenOptions& options) {
  validate(options);
  if (options.rate_per_sec <= 0.0) {
    throw std::invalid_argument("loadgen: rate_per_sec must be positive");
  }
  // Fixed-rate arrivals: request i is due at start + i/rate, regardless
  // of how the server is coping — submitters sleep until the due time,
  // never waiting on responses. Futures are drained afterwards.
  const auto start = Clock::now();
  const double interval_s = 1.0 / options.rate_per_sec;
  std::vector<Tally> tallies(options.threads);
  std::vector<std::thread> submitters;
  submitters.reserve(options.threads);
  for (unsigned t = 0; t < options.threads; ++t) {
    submitters.emplace_back([&, t] {
      std::vector<std::future<Response>> in_flight;
      // Thread t owns arrivals t, t+threads, t+2*threads, ...
      for (std::uint64_t i = t; i < options.total_requests;
           i += options.threads) {
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) * interval_s));
        std::this_thread::sleep_until(due);
        const Query& query = options.queries[i % options.queries.size()];
        in_flight.push_back(server.submit(query, request_deadline(options)));
      }
      for (std::future<Response>& future : in_flight) {
        tallies[t].absorb(future.get());
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  const std::chrono::duration<double> wall = Clock::now() - start;

  Tally total;
  for (Tally& tally : tallies) total.merge(std::move(tally));
  return finalize(std::move(total), wall.count());
}

}  // namespace bevr::service
