#include "bevr/service/client.h"

#include "bevr/service/server.h"

namespace bevr::service {

Response Client::evaluate(const Query& query,
                          std::chrono::nanoseconds timeout) const {
  const Deadline deadline =
      timeout == kNoTimeout ? kNoDeadline : Clock::now() + timeout;
  // The server guarantees every future resolves (kOk / kOverloaded /
  // kDeadlineExceeded), so an unconditional get() cannot hang past the
  // drain of the queue.
  return server_->submit(query, deadline).get();
}

}  // namespace bevr::service
