#include "bevr/service/server.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>

#include "bevr/kernels/sweep_evaluator.h"
#include "bevr/obs/flight_recorder.h"
#include "bevr/obs/trace.h"
#include "bevr/runner/memoized_model.h"
#include "bevr/runner/runner.h"

namespace bevr::service {

std::string to_string(StatusCode status) {
  switch (status) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

namespace {

std::string format_exact(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

// Scalar-mode batching identity: exact spec fields. The kernels batch
// key is finer (content fingerprint), but with kernels off there is no
// evaluator to ask, and specs are the identity that exists.
std::string spec_key(const runner::ScenarioSpec& spec) {
  return "spec:" + to_string(spec.load) + "(" + format_exact(spec.load_param) +
         "," + format_exact(spec.load_mean) + ")|" + to_string(spec.util) +
         "(" + format_exact(spec.util_param) + ")|eps=" +
         format_exact(spec.eval.tail_eps) +
         "|budget=" + std::to_string(spec.eval.direct_budget);
}

double elapsed_us(std::uint64_t since_ns) {
  return static_cast<double>(obs::now_ns() - since_ns) * 1e-3;
}

}  // namespace

/// One evaluation context: the memoizing façade (scalar path + memo),
/// the kernel it dispatches to (null with use_kernels off), and the
/// batching identity. Immutable after construction; shared by every
/// scenario name that resolves to the same key.
struct Server::Entry {
  std::shared_ptr<runner::MemoizedVariableLoad> model;
  const kernels::SweepEvaluator* kernel = nullptr;  // owned by model
  double mean = 0.0;
  std::string key;
};

struct Server::Waiter {
  std::promise<Response> promise;
  Deadline deadline = kNoDeadline;
  std::uint64_t submit_ns = 0;
  bool coalesced = false;
  obs::TraceContext trace;  ///< this request's causal identity
};

struct Server::Ticket {
  std::shared_ptr<const Entry> entry;
  double capacity = 0.0;
  bool with_gap = false;
  std::vector<Waiter> waiters;
};

std::size_t Server::CoalesceKeyHash::operator()(
    const CoalesceKey& key) const noexcept {
  std::size_t hash = std::hash<const void*>{}(key.entry);
  hash ^= std::hash<std::uint64_t>{}(key.capacity_bits) + 0x9e3779b97f4a7c15ULL +
          (hash << 6) + (hash >> 2);
  return hash * 2ULL + (key.with_gap ? 1ULL : 0ULL);
}

Server::Server(Options options) : options_(std::move(options)) {
  if (options_.queue_capacity == 0) {
    throw std::invalid_argument("Server: queue_capacity must be positive");
  }
  if (options_.max_batch == 0) {
    throw std::invalid_argument("Server: max_batch must be positive");
  }
  if (!options_.cache) options_.cache = std::make_shared<runner::MemoCache>();
  if (options_.registry == nullptr) {
    options_.registry = &runner::ScenarioRegistry::builtin();
  }
  paused_ = options_.paused;

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  requests_ = registry.counter("service/requests");
  admitted_ = registry.counter("service/admitted");
  coalesced_ = registry.counter("service/coalesced");
  rejected_overload_ = registry.counter("service/rejected_overload");
  rejected_shutdown_ = registry.counter("service/rejected_shutdown");
  deadline_at_submit_ = registry.counter("service/deadline_at_submit");
  deadline_in_queue_ = registry.counter("service/deadline_in_queue");
  responses_ok_ = registry.counter("service/responses_ok");
  evaluations_ = registry.counter("service/evaluations");
  rows_evaluated_ = registry.counter("service/rows_evaluated");
  queue_depth_gauge_ = registry.gauge("service/queue_depth");
  queue_us_ = registry.histogram("service/queue_us");
  latency_us_ = registry.histogram("service/latency_us");
  eval_us_ = registry.histogram("service/eval_us");
  batch_rows_ =
      registry.histogram("service/batch_rows",
                         obs::HistogramSpec::linear(1.0, 1.0, 64));
  deadline_slo_ = &obs::SloRegistry::global().tracker(
      "service/deadline", options_.deadline_slo_target);
  admission_slo_ = &obs::SloRegistry::global().tracker(
      "service/admission", options_.admission_slo_target);

  unsigned count = options_.workers;
  if (count == 0) count = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Server::~Server() { shutdown(); }

std::shared_ptr<const Server::Entry> Server::resolve_entry(
    const std::string& scenario) {
  std::lock_guard<std::mutex> lock(entries_mutex_);
  if (const auto it = by_scenario_.find(scenario); it != by_scenario_.end()) {
    return it->second;
  }
  const runner::ScenarioSpec* spec = options_.registry->find(scenario);
  if (spec == nullptr) {
    throw std::invalid_argument("Server: unknown scenario '" + scenario + "'");
  }
  // Build through the runner's own factory so the service evaluates on
  // the exact path (memo + kernel dispatch) a bevr_run sweep would.
  auto model =
      runner::make_memoized_model(*spec, options_.cache, options_.use_kernels);
  auto entry = std::make_shared<Entry>();
  entry->kernel = model->kernel();
  entry->mean = model->mean_load();
  entry->key = entry->kernel != nullptr ? entry->kernel->batch_key()
                                        : spec_key(*spec);
  entry->model = std::move(model);
  // Two scenario names with one identity share the first-built context,
  // so their queries coalesce and share memo state.
  if (const auto it = by_key_.find(entry->key); it != by_key_.end()) {
    by_scenario_.emplace(scenario, it->second);
    return it->second;
  }
  by_key_.emplace(entry->key, entry);
  by_scenario_.emplace(scenario, entry);
  return entry;
}

std::string Server::scenario_key(const std::string& scenario) {
  return resolve_entry(scenario)->key;
}

void Server::respond(Waiter& waiter, Response response) {
  response.trace_id = waiter.trace.trace_id;
  response.total_us = elapsed_us(waiter.submit_ns);
  latency_us_.observe(response.total_us);
  latency_window_.observe(response.total_us);
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  switch (response.status) {
    case StatusCode::kOk: {
      // A response that arrives after its deadline still carries
      // values, but it missed the objective — that is the SLO's "bad".
      const bool on_time =
          waiter.deadline == kNoDeadline || Clock::now() <= waiter.deadline;
      deadline_slo_->record(on_time);
      if (on_time) {
        flight.record(obs::FlightCode::kRespond, waiter.trace.trace_id,
                      nullptr, response.total_us);
      } else {
        flight.record(obs::FlightCode::kDeadlineMiss, waiter.trace.trace_id,
                      "late delivery", response.total_us);
      }
      break;
    }
    case StatusCode::kDeadlineExceeded:
      deadline_slo_->record(false);
      flight.record(obs::FlightCode::kExpire, waiter.trace.trace_id, nullptr,
                    response.total_us);
      break;
    case StatusCode::kOverloaded:
      // An admission outcome, not a deadline one; the submit path
      // already recorded it against the admission SLO.
      break;
  }
  obs::TraceCollector::global().record_instant("service/respond",
                                               waiter.trace.child(1));
  waiter.promise.set_value(std::move(response));
}

std::future<Response> Server::submit(const Query& query, Deadline deadline) {
  requests_.inc();
  // Causal identity first: every outcome of this submit — even a
  // rejection — carries the same deterministic trace id.
  const std::uint64_t request_index =
      next_request_.fetch_add(1, std::memory_order_relaxed);
  const obs::TraceContext trace =
      obs::TraceContext::derive(options_.trace_seed, request_index);
  // Flow-out: the arrow from this submit span lands on whichever
  // evaluation span eventually serves (or expires) the request.
  obs::TraceSpan submit_span("service/submit", trace,
                             obs::TraceEvent::kFlowOut);
  obs::FlightRecorder& flight = obs::FlightRecorder::global();

  const std::shared_ptr<const Entry> entry = resolve_entry(query.scenario);

  Waiter waiter;
  waiter.deadline = deadline;
  waiter.submit_ns = obs::now_ns();
  waiter.trace = trace;
  std::future<Response> future = waiter.promise.get_future();

  Response rejection;
  rejection.capacity = query.capacity;

  if (deadline != kNoDeadline && Clock::now() >= deadline) {
    deadline_at_submit_.inc();
    rejection.status = StatusCode::kDeadlineExceeded;
    respond(waiter, std::move(rejection));
    return future;
  }

  const CoalesceKey key{entry.get(),
                        std::bit_cast<std::uint64_t>(query.capacity),
                        query.with_bandwidth_gap};
  bool coalesced = false;
  bool enqueued = false;
  bool shed_overload = false;
  std::size_t depth_at_rejection = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!stopping_) {
      if (const auto it = pending_.find(key); it != pending_.end()) {
        waiter.coalesced = true;
        coalesced_.inc();
        admitted_.inc();
        it->second->waiters.push_back(std::move(waiter));
        coalesced = true;
        enqueued = true;
      } else if (queue_.size() < options_.queue_capacity) {
        auto ticket = std::make_unique<Ticket>();
        ticket->entry = entry;
        ticket->capacity = query.capacity;
        ticket->with_gap = query.with_bandwidth_gap;
        ticket->waiters.push_back(std::move(waiter));
        pending_.emplace(key, ticket.get());
        queue_.push_back(std::move(ticket));
        admitted_.inc();
        queue_depth_gauge_.set(static_cast<double>(queue_.size()));
        work_ready_.notify_one();
        enqueued = true;
      } else {
        rejected_overload_.inc();
        shed_overload = true;
        depth_at_rejection = queue_.size();
      }
    } else {
      rejected_shutdown_.inc();
      flight.record(obs::FlightCode::kShed, trace.trace_id, "shutdown");
    }
  }
  if (enqueued) {
    admission_slo_->record(true);
    consecutive_overloads_.store(0, std::memory_order_relaxed);
    if (coalesced) {
      flight.record(obs::FlightCode::kCoalesce, trace.trace_id);
      obs::TraceCollector::global().record_instant("service/coalesce", trace);
    } else {
      flight.record(obs::FlightCode::kSubmit, trace.trace_id);
      obs::TraceCollector::global().record_instant("service/enqueue", trace);
    }
    return future;
  }
  admission_slo_->record(false);
  if (shed_overload) {
    flight.record(obs::FlightCode::kOverloaded, trace.trace_id, nullptr,
                  static_cast<double>(depth_at_rejection));
    // Storm detection: a run of back-to-back sheds means the server is
    // not just momentarily full — preserve the flight into the storm.
    // Shutdown rejections don't count; an emptying server is not a
    // storm.
    const std::uint64_t streak =
        consecutive_overloads_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.overload_storm_threshold != 0 &&
        streak == options_.overload_storm_threshold) {
      flight.record(obs::FlightCode::kStorm, trace.trace_id, nullptr,
                    static_cast<double>(streak));
      obs::TraceCollector::global().record_instant("service/overload_storm",
                                                   trace);
      flight.auto_dump("overload-storm");
    }
  }
  rejection.status = StatusCode::kOverloaded;
  respond(waiter, std::move(rejection));
  return future;
}

void Server::worker_loop(unsigned worker_index) {
  // Stable track ids: service workers live at 200+, distinct from the
  // runner pool's 100+ block and the main thread's 1.
  obs::TraceCollector::set_thread_track(
      "service/worker" + std::to_string(worker_index), 200 + worker_index);
  for (;;) {
    std::vector<std::unique_ptr<Ticket>> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      work_ready_.wait(lock, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;  // spurious wake while paused
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      const Ticket& first = *batch.front();
      pending_.erase(CoalesceKey{first.entry.get(),
                                 std::bit_cast<std::uint64_t>(first.capacity),
                                 first.with_gap});
      // Claim every queued ticket this evaluation context can serve in
      // the same kernel call.
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < options_.max_batch;) {
        Ticket& other = **it;
        if (other.entry == first.entry && other.with_gap == first.with_gap) {
          pending_.erase(
              CoalesceKey{other.entry.get(),
                          std::bit_cast<std::uint64_t>(other.capacity),
                          other.with_gap});
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      queue_depth_gauge_.set(static_cast<double>(queue_.size()));
    }
    process_batch(std::move(batch));
  }
}

void Server::process_batch(std::vector<std::unique_ptr<Ticket>> batch) {
  const std::uint64_t eval_start_ns = obs::now_ns();
  const auto now = Clock::now();

  // Resolve waiters that aged out in the queue; they cost no
  // evaluation. A ticket with no live waiter left is dropped whole.
  // Expired waiters still count toward the queue-time histogram —
  // every request that reached a worker is observed exactly once.
  std::vector<std::unique_ptr<Ticket>> live;
  live.reserve(batch.size());
  for (auto& ticket : batch) {
    std::vector<Waiter> keep;
    keep.reserve(ticket->waiters.size());
    for (Waiter& waiter : ticket->waiters) {
      if (waiter.deadline != kNoDeadline && now >= waiter.deadline) {
        deadline_in_queue_.inc();
        Response expired;
        expired.status = StatusCode::kDeadlineExceeded;
        expired.capacity = ticket->capacity;
        expired.queue_us = elapsed_us(waiter.submit_ns);
        queue_us_.observe(expired.queue_us);
        // Terminate the request's flow arrow at its expiry point so
        // the trace shows where the wait ended.
        obs::TraceCollector::global().record_instant(
            "service/expire", waiter.trace, obs::TraceEvent::kFlowIn);
        respond(waiter, std::move(expired));
      } else {
        keep.push_back(std::move(waiter));
      }
    }
    ticket->waiters = std::move(keep);
    if (!ticket->waiters.empty()) live.push_back(std::move(ticket));
  }
  if (live.empty()) return;

  // Sorted batch: what makes the kernel's warm k_max resume pay.
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) {
              return a->capacity < b->capacity;
            });
  std::vector<double> capacities;
  capacities.reserve(live.size());
  for (const auto& ticket : live) capacities.push_back(ticket->capacity);

  const Entry& entry = *live.front()->entry;
  const bool with_gap = live.front()->with_gap;

  // The evaluation span adopts the first waiter's trace as its causal
  // parent; every waiter's fan-in arrow (flow-in instants recorded
  // inside the span, below) terminates on this one slice.
  const obs::TraceContext eval_trace = live.front()->waiters.front().trace;
  obs::TraceSpan eval_span("service/evaluate", eval_trace.child(0));
  obs::FlightRecorder::global().record(
      obs::FlightCode::kEvaluate, eval_trace.trace_id, nullptr,
      static_cast<double>(live.size()));

  std::vector<kernels::SweepEvaluator::Row> rows;
  {
    obs::Histogram::Timer timer(eval_us_);
    if (entry.kernel != nullptr) {
      rows = entry.kernel->evaluate_grid(capacities, with_gap);
    } else {
      // Scalar path: the exact calls plan_variable_load makes, through
      // the same memoizing façade — identical values by construction.
      rows.reserve(capacities.size());
      for (const double c : capacities) {
        kernels::SweepEvaluator::Row row;
        row.capacity = c;
        const auto kmax = entry.model->k_max(c);
        row.best_effort = entry.model->best_effort(c);
        row.reservation = entry.model->reservation(c);
        row.performance_gap = entry.model->performance_gap(c);
        if (with_gap) row.bandwidth_gap = entry.model->bandwidth_gap(c);
        row.k_max = kmax ? static_cast<double>(*kmax) : -1.0;
        row.blocking = entry.model->blocking_fraction(c);
        rows.push_back(row);
      }
    }
  }
  evaluations_.inc();
  rows_evaluated_.add(rows.size());
  batch_rows_.observe(static_cast<double>(rows.size()));

  for (std::size_t i = 0; i < live.size(); ++i) {
    Ticket& ticket = *live[i];
    const kernels::SweepEvaluator::Row& row = rows[i];
    Response ok;
    ok.status = StatusCode::kOk;
    ok.capacity = ticket.capacity;
    ok.best_effort = row.best_effort;
    ok.reservation = row.reservation;
    ok.performance_gap = row.performance_gap;
    ok.bandwidth_gap = with_gap ? row.bandwidth_gap : 0.0;
    ok.k_max = row.k_max;
    ok.blocking = row.blocking;
    // Identical expression to {SweepEvaluator,VariableLoadModel}::
    // total_*: mean · per-flow value, hence bitwise-equal totals.
    ok.total_best_effort = entry.mean * row.best_effort;
    ok.total_reservation = entry.mean * row.reservation;
    ok.coalesced = ticket.waiters.size() > 1;
    ok.batch_rows = static_cast<std::uint32_t>(rows.size());
    for (Waiter& waiter : ticket.waiters) {
      responses_ok_.inc();
      Response copy = ok;
      copy.queue_us =
          static_cast<double>(eval_start_ns - waiter.submit_ns) * 1e-3;
      queue_us_.observe(copy.queue_us);
      // One flow-in instant per waiter, recorded while the evaluation
      // span is still open: N submit arrows fan into this one slice.
      obs::TraceCollector::global().record_instant(
          "service/serve", waiter.trace, obs::TraceEvent::kFlowIn);
      respond(waiter, std::move(copy));
    }
  }
}

void Server::resume() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  paused_ = false;
  work_ready_.notify_all();
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    paused_ = false;  // a paused queue must still drain
    work_ready_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

}  // namespace bevr::service
