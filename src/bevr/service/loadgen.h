// Load generators for driving a Server, shared by the bevr_serve
// example and bench_service.
//
// Two canonical shapes:
//  * closed loop — N client threads, each submits → waits → repeats.
//    Offered load self-limits to N in-flight requests; measures
//    throughput and latency of a well-behaved population.
//  * open loop — arrivals at a fixed rate regardless of completions,
//    the textbook way to push a bounded queue past saturation and
//    observe the shedding policy (kOverloaded / kDeadlineExceeded)
//    instead of unbounded queueing.
//
// Workloads are deterministic query schedules (round-robin over a
// workset, per-thread phase offsets), so two runs against the same
// server offer the same request sequence; only timing varies.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "bevr/service/request.h"

namespace bevr::service {

class Server;

struct LoadGenOptions {
  /// The request workset, cycled round-robin. Must be non-empty.
  std::vector<Query> queries;
  /// Closed loop: client threads. Open loop: submitter threads.
  unsigned threads = 4;
  /// Closed loop: requests each thread issues.
  std::uint64_t requests_per_thread = 256;
  /// Open loop: total requests and aggregate arrival rate (req/s).
  std::uint64_t total_requests = 1024;
  double rate_per_sec = 2000.0;
  /// Per-request budget; zero means no deadline.
  std::chrono::microseconds deadline{0};
};

struct LoadGenReport {
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t coalesced = 0;  ///< kOk responses that shared a ticket
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  ///< ok / wall_seconds
  /// Client-observed end-to-end latency of kOk responses, microseconds.
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;

  [[nodiscard]] std::uint64_t total() const {
    return ok + overloaded + deadline_exceeded;
  }
};

/// Run `threads` closed-loop clients to completion and aggregate.
[[nodiscard]] LoadGenReport run_closed_loop(Server& server,
                                            const LoadGenOptions& options);

/// Submit `total_requests` at `rate_per_sec` (spread over the submitter
/// threads), then drain every future and aggregate.
[[nodiscard]] LoadGenReport run_open_loop(Server& server,
                                          const LoadGenOptions& options);

}  // namespace bevr::service
