// Benchmark registry: BEVR_BENCHMARK(name, desc) bodies self-register
// at static-init time, so a binary's suite is exactly the set of bench
// translation units linked into it — the per-figure binaries carry one
// suite each and the bevr_bench aggregate carries all of them, with no
// per-binary main() boilerplate.
//
// A suite body receives a Context: it reports how many logical items
// one repetition processed (for ns-per-op / items-per-sec), shrinks
// its workload in --smoke mode, and records contract violations that
// turn into a nonzero exit (the smoke tests double as correctness
// checks, e.g. bench_runner's determinism contract).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bevr::bench {

/// Per-run handle passed to every suite body.
class Context {
 public:
  explicit Context(bool smoke) : smoke_(smoke) {}

  /// True under --smoke: use a tiny workload (seconds, not minutes,
  /// across the whole aggregate suite) while touching the same code.
  [[nodiscard]] bool smoke() const { return smoke_; }

  /// Workload-size helper: full value normally, small value in smoke.
  template <typename T>
  [[nodiscard]] T pick(T full, T smoke_value) const {
    return smoke_ ? smoke_value : full;
  }

  /// Declare how many logical items one repetition processed (grid
  /// points evaluated, packets forwarded, loop iterations). Defaults
  /// to 1, making ns_per_op the whole-repetition time.
  void set_items(std::uint64_t items) { items_ = items; }
  [[nodiscard]] std::uint64_t items() const { return items_; }

  /// Record a contract violation. The harness reports every failure
  /// and exits nonzero, so ctest and CI catch regressions in the
  /// claims a suite asserts about its own numbers.
  void fail(std::string message) { failures_.push_back(std::move(message)); }
  [[nodiscard]] const std::vector<std::string>& failures() const {
    return failures_;
  }

 private:
  bool smoke_ = false;
  std::uint64_t items_ = 1;
  std::vector<std::string> failures_;
};

using BenchFn = void (*)(Context&);

struct BenchmarkInfo {
  std::string name;
  std::string description;
  BenchFn fn = nullptr;
};

class BenchmarkRegistry {
 public:
  /// The process-wide registry BEVR_BENCHMARK adds to.
  [[nodiscard]] static BenchmarkRegistry& instance();

  /// Idempotent by name (first registration wins); returns true so it
  /// can seed a static initializer.
  bool add(BenchmarkInfo info);

  /// All registered suites, sorted by name — registration order is
  /// link-order and must not leak into output or artifacts.
  [[nodiscard]] std::vector<BenchmarkInfo> benchmarks() const;

  /// Suites whose name contains `filter` (empty matches all), sorted.
  [[nodiscard]] std::vector<BenchmarkInfo> match(
      const std::string& filter) const;

 private:
  std::vector<BenchmarkInfo> benchmarks_;
};

}  // namespace bevr::bench

/// Defines and registers a suite body:
///   BEVR_BENCHMARK(fig2_poisson, "Figure 2 panels") { ... use ctx ... }
#define BEVR_BENCHMARK(ident, desc)                                          \
  static void bevr_bench_fn_##ident(::bevr::bench::Context& ctx);            \
  [[maybe_unused]] static const bool bevr_bench_reg_##ident =                \
      ::bevr::bench::BenchmarkRegistry::instance().add(                      \
          {#ident, desc, &bevr_bench_fn_##ident});                           \
  static void bevr_bench_fn_##ident(                                         \
      [[maybe_unused]] ::bevr::bench::Context& ctx)
