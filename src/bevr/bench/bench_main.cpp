#include "bevr/bench/bench_main.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bevr/bench/artifact.h"
#include "bevr/bench/compare.h"
#include "bevr/bench/harness.h"
#include "bevr/bench/registry.h"

namespace bevr::bench {

namespace {

int usage(const char* argv0, const char* error) {
  if (error != nullptr) std::fprintf(stderr, "%s: %s\n", argv0, error);
  std::fprintf(
      stderr,
      "usage: %s [filter] [--filter SUBSTR] [--list]\n"
      "       [--smoke] [--warmup N] [--reps N]\n"
      "       [--suite NAME] [--json-out FILE]\n"
      "       [--baseline FILE] [--threshold FRAC] [--compare FILE]\n"
      "       [--quiet | --verbose]\n"
      "\n"
      "  --list       print the registered suites and exit\n"
      "  --smoke      tiny workloads (CI); recorded in the artifact\n"
      "  --warmup N   untimed repetitions before measuring (default 0)\n"
      "  --reps N     timed repetitions per suite (default 1)\n"
      "  --json-out   artifact path (default BENCH_<suite>.json in CWD)\n"
      "  --baseline   compare this run's medians against a prior artifact;\n"
      "               exit 3 when any suite regressed beyond the threshold\n"
      "  --threshold  allowed fractional median growth (default 0.25)\n"
      "  --compare    compare an existing artifact FILE against --baseline\n"
      "               without running anything\n"
      "  --quiet      silence suite table output (default when more than\n"
      "               one suite runs); --verbose forces tables on\n",
      argv0);
  return 2;
}

bool parse_int(const char* text, int min_value, int& out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (errno != 0 || *end != '\0' || value < min_value || value > 1'000'000) {
    return false;
  }
  out = static_cast<int>(value);
  return true;
}

bool parse_fraction(const char* text, double& out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (errno != 0 || *end != '\0' || !(value >= 0.0) || value > 100.0) {
    return false;
  }
  out = value;
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

void print_summary(const std::vector<BenchmarkResult>& results) {
  std::printf("\n== bench summary ==\n");
  std::printf("%-32s %5s %12s %12s %12s %12s %14s\n", "suite", "reps",
              "median_ms", "mad_ms", "min_ms", "ns_per_op", "items_per_sec");
  for (const BenchmarkResult& result : results) {
    std::printf("%-32s %5llu %12.3f %12.3f %12.3f %12.1f %14.1f\n",
                result.name.c_str(),
                static_cast<unsigned long long>(result.stats.samples),
                result.stats.median_ns * 1e-6, result.stats.mad_ns * 1e-6,
                result.stats.min_ns * 1e-6,
                ns_per_op(result.stats, result.items),
                items_per_sec(result.stats, result.items));
  }
}

}  // namespace

int bench_main(int argc, char** argv) try {
  std::string filter;
  std::string suite_name;
  std::string json_out;
  std::string baseline_path;
  std::string compare_path;
  double threshold = 0.25;
  bool list_only = false;
  bool quiet_flag = false;
  bool verbose_flag = false;
  RunConfig config;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.erase(eq);
        has_inline = true;
      }
    }
    const auto next_value = [&](const char* flag) -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (has_inline && (arg == "--list" || arg == "--smoke" ||
                       arg == "--quiet" || arg == "--verbose")) {
      return usage(argv[0], (arg + " does not take a value").c_str());
    }
    if (arg == "--list") {
      list_only = true;
    } else if (arg == "--smoke") {
      config.smoke = true;
    } else if (arg == "--quiet") {
      quiet_flag = true;
    } else if (arg == "--verbose") {
      verbose_flag = true;
    } else if (arg == "--filter") {
      const char* value = next_value("--filter");
      if (value == nullptr) return usage(argv[0], nullptr);
      filter = value;
    } else if (arg == "--suite") {
      const char* value = next_value("--suite");
      if (value == nullptr) return usage(argv[0], nullptr);
      suite_name = value;
    } else if (arg == "--json-out") {
      const char* value = next_value("--json-out");
      if (value == nullptr) return usage(argv[0], nullptr);
      json_out = value;
    } else if (arg == "--baseline") {
      const char* value = next_value("--baseline");
      if (value == nullptr) return usage(argv[0], nullptr);
      baseline_path = value;
    } else if (arg == "--compare") {
      const char* value = next_value("--compare");
      if (value == nullptr) return usage(argv[0], nullptr);
      compare_path = value;
    } else if (arg == "--warmup") {
      const char* value = next_value("--warmup");
      if (value == nullptr) return usage(argv[0], nullptr);
      if (!parse_int(value, 0, config.warmup)) {
        return usage(argv[0], "--warmup must be a nonnegative integer");
      }
    } else if (arg == "--reps") {
      const char* value = next_value("--reps");
      if (value == nullptr) return usage(argv[0], nullptr);
      if (!parse_int(value, 1, config.repetitions)) {
        return usage(argv[0], "--reps must be a positive integer");
      }
    } else if (arg == "--threshold") {
      const char* value = next_value("--threshold");
      if (value == nullptr) return usage(argv[0], nullptr);
      if (!parse_fraction(value, threshold)) {
        return usage(argv[0],
                     "--threshold must be a nonnegative fraction (e.g. 0.25)");
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0], ("unknown option '" + arg + "'").c_str());
    } else if (filter.empty()) {
      filter = arg;
    } else {
      return usage(argv[0], "more than one filter given");
    }
  }

  // File-vs-file compare mode: no benchmarks run at all.
  if (!compare_path.empty()) {
    if (baseline_path.empty()) {
      return usage(argv[0], "--compare requires --baseline");
    }
    std::string baseline_text, current_text;
    if (!read_file(baseline_path, baseline_text)) {
      std::fprintf(stderr, "%s: cannot read baseline '%s'\n", argv[0],
                   baseline_path.c_str());
      return 2;
    }
    if (!read_file(compare_path, current_text)) {
      std::fprintf(stderr, "%s: cannot read artifact '%s'\n", argv[0],
                   compare_path.c_str());
      return 2;
    }
    const CompareReport report =
        compare_artifacts(baseline_text, current_text, threshold);
    std::fputs(report.render().c_str(), stdout);
    return report.regressions() == 0 ? 0 : 3;
  }

  const auto selected = BenchmarkRegistry::instance().match(filter);
  if (list_only) {
    std::printf("%-32s %s\n", "suite", "description");
    for (const BenchmarkInfo& info : selected) {
      std::printf("%-32s %s\n", info.name.c_str(), info.description.c_str());
    }
    std::printf("%zu suite(s)\n", selected.size());
    return 0;
  }
  if (selected.empty()) {
    return usage(argv[0],
                 filter.empty()
                     ? "no benchmarks registered in this binary"
                     : ("no suite matches '" + filter + "' (try --list)")
                           .c_str());
  }

  // One suite keeps its paper-vs-measured tables on stdout (the
  // historical behaviour); an aggregate run silences them so 17 suites
  // don't interleave. Both are overridable.
  config.quiet = quiet_flag || (selected.size() > 1 && !verbose_flag);

  std::vector<BenchmarkResult> results;
  std::vector<std::string> failures;
  for (const BenchmarkInfo& info : selected) {
    std::fprintf(stderr, "[bench] %-32s ", info.name.c_str());
    std::fflush(stderr);
    BenchmarkResult result = run_benchmark(info, config);
    std::fprintf(stderr, "%10.3f ms median (%llu rep%s)%s\n",
                 result.stats.median_ns * 1e-6,
                 static_cast<unsigned long long>(result.stats.samples),
                 result.stats.samples == 1 ? "" : "s",
                 result.failures.empty() ? "" : "  FAILURES");
    for (const std::string& failure : result.failures) {
      failures.push_back(failure);
    }
    results.push_back(std::move(result));
  }

  print_summary(results);

  if (suite_name.empty()) {
    suite_name = selected.size() == 1 ? selected.front().name : "all";
  }
  const std::string artifact =
      render_artifact(suite_name, collect_provenance(config), results,
                      global_metrics_json());
  const std::string artifact_path =
      json_out.empty() ? "BENCH_" + suite_name + ".json" : json_out;
  {
    std::ofstream file(artifact_path);
    if (!file) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                   artifact_path.c_str());
      return 2;
    }
    file << artifact;
  }
  std::printf("wrote %s (%zu suite%s)\n", artifact_path.c_str(),
              results.size(), results.size() == 1 ? "" : "s");

  int exit_code = 0;
  if (!baseline_path.empty()) {
    std::string baseline_text;
    if (!read_file(baseline_path, baseline_text)) {
      std::fprintf(stderr, "%s: cannot read baseline '%s'\n", argv[0],
                   baseline_path.c_str());
      return 2;
    }
    const CompareReport report =
        compare_artifacts(baseline_text, artifact, threshold);
    std::fputs(report.render().c_str(), stdout);
    if (report.regressions() != 0) exit_code = 3;
  }

  if (!failures.empty()) {
    std::fprintf(stderr, "\n%zu contract failure(s):\n", failures.size());
    for (const std::string& failure : failures) {
      std::fprintf(stderr, "  FAIL: %s\n", failure.c_str());
    }
    exit_code = 1;
  }
  return exit_code;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bench_main: %s\n", error.what());
  return 2;
}

}  // namespace bevr::bench
