// Minimal JSON value parser (RFC 8259 subset) for reading BENCH_*.json
// baseline artifacts back in. Deliberately small: objects, arrays,
// strings (with escapes; \uXXXX accepted, decoded only for the BMP-
// ASCII range the artifacts actually emit), numbers, literals. The
// writer side lives in artifact.cpp; this is the reader the regression
// gate and the schema tests share, so the schema is checked by the
// same code that consumes it.
//
// The reader is total on hostile bytes: any malformed input — truncated
// documents, duplicate object keys, nesting beyond kMaxDepth (the
// parser recurses, so unbounded nesting would be a stack overflow, not
// an exception) — throws std::runtime_error with a byte offset; it
// never crashes and never returns a half-parsed value.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bevr::bench::json {

class Value;
using ValuePtr = std::shared_ptr<const Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] ValuePtr get(const std::string& key) const;
};

/// Parse one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Throws std::runtime_error with the
/// byte offset on malformed input.
/// Container nesting bound: one artifact needs 4 levels; 64 leaves
/// headroom while keeping the recursive parser's stack use trivial.
inline constexpr int kMaxDepth = 64;

/// Parse one complete JSON document. Throws std::runtime_error (with
/// the byte offset) on any malformed, truncated, duplicate-keyed or
/// over-nested input.
[[nodiscard]] ValuePtr parse(const std::string& text);

}  // namespace bevr::bench::json
