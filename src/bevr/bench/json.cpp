#include "bevr/bench/json.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace bevr::bench::json {

ValuePtr Value::get(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ValuePtr parse_document() {
    skip_ws();
    ValuePtr value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }
  void skip_ws() {
    while (!at_end() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                         text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  ValuePtr parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return make_string(parse_string());
      case 't': return parse_literal("true", Type::kBool, true);
      case 'f': return parse_literal("false", Type::kBool, false);
      case 'n': return parse_literal("null", Type::kNull, false);
      default: return parse_number();
    }
  }

  ValuePtr parse_literal(const char* word, Type type, bool truth) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (at_end() || take() != *p) fail(std::string("bad literal, wanted ") + word);
    }
    auto value = std::make_shared<Value>();
    value->type = type;
    value->boolean = truth;
    return value;
  }

  static ValuePtr make_string(std::string text) {
    auto value = std::make_shared<Value>();
    value->type = Type::kString;
    value->string = std::move(text);
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Artifacts only escape ASCII; pass anything else through as
          // a replacement to keep the reader total.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  ValuePtr parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    while (!at_end() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    auto value = std::make_shared<Value>();
    value->type = Type::kNumber;
    value->number = parsed;
    return value;
  }

  /// RAII nesting guard: the parser recurses per container level, so
  /// without a bound a few kilobytes of '[' would be a stack overflow
  /// rather than an exception.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) {
        parser_.fail("nesting deeper than " + std::to_string(kMaxDepth) +
                     " levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& parser_;
  };

  ValuePtr parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    auto value = std::make_shared<Value>();
    value->type = Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value->array.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return value;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
      skip_ws();
    }
  }

  ValuePtr parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    auto value = std::make_shared<Value>();
    value->type = Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      // The artifact writer never repeats a key, so a duplicate means
      // a corrupt or adversarial file; silently keeping either value
      // would make the gate compare against data nobody wrote.
      if (!value->object.emplace(std::move(key), parse_value()).second) {
        fail("duplicate object key");
      }
      skip_ws();
      const char c = take();
      if (c == '}') return value;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;  ///< current container nesting, bounded by kMaxDepth
};

}  // namespace

ValuePtr parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace bevr::bench::json
