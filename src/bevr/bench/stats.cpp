#include "bevr/bench/stats.h"

#include <algorithm>
#include <cmath>

namespace bevr::bench {

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  const std::size_t mid = n / 2;
  if (n % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

SampleStats compute_stats(const std::vector<double>& samples_ns) {
  SampleStats stats;
  if (samples_ns.empty()) return stats;
  stats.samples = samples_ns.size();
  stats.min_ns = *std::min_element(samples_ns.begin(), samples_ns.end());
  stats.max_ns = *std::max_element(samples_ns.begin(), samples_ns.end());
  double sum = 0.0;
  for (const double s : samples_ns) sum += s;
  stats.mean_ns = sum / static_cast<double>(samples_ns.size());
  stats.median_ns = median(samples_ns);
  std::vector<double> deviations;
  deviations.reserve(samples_ns.size());
  for (const double s : samples_ns) {
    deviations.push_back(std::abs(s - stats.median_ns));
  }
  stats.mad_ns = median(std::move(deviations));
  return stats;
}

double ns_per_op(const SampleStats& stats, std::uint64_t items) {
  const double divisor = items == 0 ? 1.0 : static_cast<double>(items);
  return stats.median_ns / divisor;
}

double items_per_sec(const SampleStats& stats, std::uint64_t items) {
  if (stats.median_ns <= 0.0) return 0.0;
  const double count = items == 0 ? 1.0 : static_cast<double>(items);
  return count / (stats.median_ns * 1e-9);
}

}  // namespace bevr::bench
