#include "bevr/bench/registry.h"

#include <algorithm>

namespace bevr::bench {

BenchmarkRegistry& BenchmarkRegistry::instance() {
  // Function-local static: safe to call from other static initializers
  // (the BEVR_BENCHMARK registrars) regardless of TU link order.
  static BenchmarkRegistry registry;
  return registry;
}

bool BenchmarkRegistry::add(BenchmarkInfo info) {
  for (const BenchmarkInfo& existing : benchmarks_) {
    if (existing.name == info.name) return true;
  }
  benchmarks_.push_back(std::move(info));
  return true;
}

std::vector<BenchmarkInfo> BenchmarkRegistry::benchmarks() const {
  return match("");
}

std::vector<BenchmarkInfo> BenchmarkRegistry::match(
    const std::string& filter) const {
  std::vector<BenchmarkInfo> result;
  for (const BenchmarkInfo& info : benchmarks_) {
    if (filter.empty() || info.name.find(filter) != std::string::npos) {
      result.push_back(info);
    }
  }
  std::sort(result.begin(), result.end(),
            [](const BenchmarkInfo& a, const BenchmarkInfo& b) {
              return a.name < b.name;
            });
  return result;
}

}  // namespace bevr::bench
