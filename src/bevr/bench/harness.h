// The measurement engine: run one registered suite body under steady-
// clock timing with warmup and repetition control, and fold the raw
// repetition times into robust stats.
//
// The contract with suite bodies: a body is one repetition's worth of
// work. The harness calls it `warmup` times untimed (caches, branch
// predictors, memo tables settle), then `repetitions` times timed.
// Bodies are free to print their paper-vs-measured tables; when the
// caller asks for quiet mode (the aggregate CLI does, so 17 suites
// don't interleave), stdout is parked on /dev/null around the body
// and restored before the harness prints its own summary.
#pragma once

#include <string>
#include <vector>

#include "bevr/bench/registry.h"
#include "bevr/bench/stats.h"

namespace bevr::bench {

/// Knobs shared by every suite in one harness invocation.
struct RunConfig {
  int warmup = 0;        ///< untimed body runs before measuring
  int repetitions = 1;   ///< timed body runs (>= 1)
  bool smoke = false;    ///< tiny-workload mode (CI)
  bool quiet = false;    ///< silence the body's table output
};

/// Everything measured for one suite.
struct BenchmarkResult {
  std::string name;
  std::string description;
  std::uint64_t items = 1;          ///< per-repetition, from Context
  std::vector<double> samples_ns;   ///< one entry per timed repetition
  SampleStats stats;
  std::vector<std::string> failures;  ///< contract violations from the body
};

/// Redirect fd 1 to /dev/null for the object's lifetime (POSIX). Used
/// to park suite table output; the artifact files are unaffected.
class ScopedStdoutSilence {
 public:
  explicit ScopedStdoutSilence(bool active);
  ~ScopedStdoutSilence();
  ScopedStdoutSilence(const ScopedStdoutSilence&) = delete;
  ScopedStdoutSilence& operator=(const ScopedStdoutSilence&) = delete;

 private:
  int saved_fd_ = -1;
};

/// Run one suite under the config. Exceptions from the body are caught
/// and recorded as failures (the aggregate must keep going).
[[nodiscard]] BenchmarkResult run_benchmark(const BenchmarkInfo& info,
                                            const RunConfig& config);

}  // namespace bevr::bench
