// Shared CLI driver for every benchmark binary. A binary's suite set
// is whatever BEVR_BENCHMARK bodies were linked in: the per-figure
// binaries call this with one suite registered, the bevr_bench
// aggregate with all of them.
//
// Usage:
//   <prog> [filter] [--filter SUBSTR] [--list]
//          [--smoke] [--warmup N] [--reps N]
//          [--suite NAME] [--json-out FILE]
//          [--baseline FILE] [--threshold FRAC]
//          [--compare FILE]
//          [--quiet | --verbose]
//
// Exit codes: 0 ok; 1 contract failure inside a suite; 2 usage error /
// unreadable file; 3 median regression beyond the threshold.
#pragma once

namespace bevr::bench {

int bench_main(int argc, char** argv);

}  // namespace bevr::bench
