// BENCH_*.json artifact emission: one machine-readable document per
// harness run carrying full provenance, per-suite robust stats and an
// embedded bevr::obs MetricsRegistry snapshot — the durable perf
// trajectory the stdout tables never gave us. Schema "bevr.bench.v1":
//
// {
//   "schema": "bevr.bench.v1",
//   "suite": "<run label>",
//   "provenance": {
//     "git": "...", "git_commit_time": "...", "compiler": "...",
//     "build_type": "...", "threads": N, "cpus": N,
//     "obs_enabled": bool, "smoke": bool, "warmup": N, "repetitions": N
//   },
//   "benchmarks": [
//     { "name": "...", "description": "...", "items": N,
//       "samples_ns": [...],
//       "stats": { "samples": N, "min_ns": x, "max_ns": x, "mean_ns": x,
//                  "median_ns": x, "mad_ns": x, "ns_per_op": x,
//                  "items_per_sec": x },
//       "failures": ["..."] }, ...
//   ],
//   "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} }
// }
#pragma once

#include <string>
#include <vector>

#include "bevr/bench/harness.h"

namespace bevr::bench {

inline constexpr const char* kArtifactSchema = "bevr.bench.v1";

/// Build-and-host provenance captured at emission time.
struct Provenance {
  std::string git;              ///< `git describe --always --dirty` or "unknown"
  std::string git_commit_time;  ///< HEAD committer time, ISO 8601, or "unknown"
  std::string compiler;         ///< e.g. "gcc 13.2.0" (__VERSION__)
  std::string build_type;       ///< CMAKE_BUILD_TYPE baked in at compile time
  unsigned threads = 0;         ///< std::thread::hardware_concurrency()
  long cpus = 0;                ///< online processors (sysconf)
  bool obs_enabled = true;      ///< BEVR_OBS compiled in and registry enabled
  bool smoke = false;
  int warmup = 0;
  int repetitions = 1;
};

/// Capture provenance for this process/run (shells out to git via the
/// runner's helpers; "unknown" when unavailable).
[[nodiscard]] Provenance collect_provenance(const RunConfig& config);

/// Render the full artifact document. `metrics_json` must be one JSON
/// object (the obs JSON report); pass "{}" to embed nothing.
[[nodiscard]] std::string render_artifact(
    const std::string& suite, const Provenance& provenance,
    const std::vector<BenchmarkResult>& results,
    const std::string& metrics_json);

/// Snapshot the global MetricsRegistry as a JSON object string.
[[nodiscard]] std::string global_metrics_json();

}  // namespace bevr::bench
