// Robust summary statistics for benchmark timing samples.
//
// Benchmark repetitions on a shared machine are contaminated by one-
// sided noise (scheduler preemption, page faults, turbo transitions):
// the distribution has a hard floor and a long right tail. The harness
// therefore reports order statistics — min (the cleanest observation),
// median (the typical one) and MAD (tail-robust spread) — rather than
// mean/stddev, and the regression gate compares medians.
#pragma once

#include <cstdint>
#include <vector>

namespace bevr::bench {

/// Summary of one benchmark's repetition times, all in nanoseconds.
struct SampleStats {
  std::uint64_t samples = 0;
  double min_ns = 0.0;
  double max_ns = 0.0;
  double mean_ns = 0.0;
  double median_ns = 0.0;
  double mad_ns = 0.0;  ///< median absolute deviation from the median
};

/// Median by sorting a copy; even counts average the middle pair.
/// Empty input returns 0.
[[nodiscard]] double median(std::vector<double> values);

/// Compute the summary over raw repetition times (ns). Empty input
/// yields an all-zero summary.
[[nodiscard]] SampleStats compute_stats(const std::vector<double>& samples_ns);

/// Median time per item: median_ns / items (items 0 treated as 1).
[[nodiscard]] double ns_per_op(const SampleStats& stats, std::uint64_t items);

/// Items per wall second at the median repetition time; 0 when the
/// median is 0 (too fast to resolve).
[[nodiscard]] double items_per_sec(const SampleStats& stats,
                                   std::uint64_t items);

}  // namespace bevr::bench
