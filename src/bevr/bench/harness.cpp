#include "bevr/bench/harness.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <exception>

namespace bevr::bench {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

ScopedStdoutSilence::ScopedStdoutSilence(bool active) {
  if (!active) return;
  std::fflush(stdout);
  const int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull < 0) return;
  saved_fd_ = ::dup(1);
  if (saved_fd_ >= 0) ::dup2(devnull, 1);
  ::close(devnull);
}

ScopedStdoutSilence::~ScopedStdoutSilence() {
  if (saved_fd_ < 0) return;
  std::fflush(stdout);
  ::dup2(saved_fd_, 1);
  ::close(saved_fd_);
}

BenchmarkResult run_benchmark(const BenchmarkInfo& info,
                              const RunConfig& config) {
  BenchmarkResult result;
  result.name = info.name;
  result.description = info.description;

  const int repetitions = config.repetitions < 1 ? 1 : config.repetitions;
  result.samples_ns.reserve(static_cast<std::size_t>(repetitions));

  const ScopedStdoutSilence silence(config.quiet);
  for (int rep = -config.warmup; rep < repetitions; ++rep) {
    Context ctx(config.smoke);
    const auto start = Clock::now();
    try {
      info.fn(ctx);
    } catch (const std::exception& error) {
      result.failures.push_back(info.name + ": uncaught exception: " +
                                error.what());
      break;
    }
    const double elapsed_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    if (rep >= 0) {
      result.samples_ns.push_back(elapsed_ns);
      result.items = ctx.items();
      for (const std::string& failure : ctx.failures()) {
        result.failures.push_back(info.name + ": " + failure);
      }
    }
  }
  result.stats = compute_stats(result.samples_ns);
  return result;
}

}  // namespace bevr::bench
