// The regression gate: compare a current BENCH_*.json artifact against
// a baseline artifact and flag suites whose median time grew beyond a
// threshold. Comparison is by median (robust to one noisy repetition)
// and by name; suites present on only one side are reported but never
// gate (adding a suite must not fail CI, and a retired suite must not
// block the PR that retires it).
#pragma once

#include <string>
#include <vector>

namespace bevr::bench {

struct CompareEntry {
  std::string name;
  double baseline_median_ns = 0.0;
  double current_median_ns = 0.0;
  double ratio = 1.0;  ///< current / baseline (1.0 when baseline is 0)
  bool regressed = false;
  bool only_in_baseline = false;
  bool only_in_current = false;
};

struct CompareReport {
  std::vector<CompareEntry> entries;  ///< sorted by name
  double threshold = 0.0;             ///< allowed fractional growth

  [[nodiscard]] std::size_t regressions() const;
  /// Human-readable table plus a verdict line.
  [[nodiscard]] std::string render() const;
};

/// Parse both artifact documents (schema bevr.bench.v1) and compare
/// suite medians. `threshold` is fractional growth: 0.25 flags suites
/// whose median regressed by more than 25%. Throws std::runtime_error
/// on malformed artifacts (bad JSON, wrong schema, missing keys).
[[nodiscard]] CompareReport compare_artifacts(const std::string& baseline_json,
                                              const std::string& current_json,
                                              double threshold);

}  // namespace bevr::bench
