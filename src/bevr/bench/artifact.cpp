#include "bevr/bench/artifact.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>

#include "bevr/obs/metrics.h"
#include "bevr/obs/report.h"
#include "bevr/runner/runner.h"

#ifndef BEVR_BUILD_TYPE
#define BEVR_BUILD_TYPE "unknown"
#endif

namespace bevr::bench {

namespace {

std::string format_double(double value) {
  if (std::isnan(value) || std::isinf(value)) return "null";  // strict JSON
  char buffer[64];
  // Shortest round-tripping representation, same policy as the obs
  // and runner emitters.
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buffer, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      case '\r': escaped += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

}  // namespace

Provenance collect_provenance(const RunConfig& config) {
  Provenance provenance;
  provenance.git = runner::git_describe();
  provenance.git_commit_time = runner::git_commit_time();
#ifdef __VERSION__
  provenance.compiler = __VERSION__;
#else
  provenance.compiler = "unknown";
#endif
  provenance.build_type = BEVR_BUILD_TYPE;
  provenance.threads = std::thread::hardware_concurrency();
  provenance.cpus = ::sysconf(_SC_NPROCESSORS_ONLN);
  provenance.obs_enabled = obs::MetricsRegistry::global().enabled();
  provenance.smoke = config.smoke;
  provenance.warmup = config.warmup;
  provenance.repetitions = config.repetitions;
  return provenance;
}

std::string global_metrics_json() {
  std::string report = obs::render_report(
      obs::MetricsRegistry::global().snapshot(), obs::ReportFormat::kJson);
  while (!report.empty() && (report.back() == '\n' || report.back() == '\r')) {
    report.pop_back();
  }
  return report.empty() ? "{}" : report;
}

std::string render_artifact(const std::string& suite,
                            const Provenance& provenance,
                            const std::vector<BenchmarkResult>& results,
                            const std::string& metrics_json) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kArtifactSchema << "\"";
  out << ",\"suite\":\"" << json_escape(suite) << "\"";
  out << ",\"provenance\":{"
      << "\"git\":\"" << json_escape(provenance.git) << "\""
      << ",\"git_commit_time\":\"" << json_escape(provenance.git_commit_time)
      << "\""
      << ",\"compiler\":\"" << json_escape(provenance.compiler) << "\""
      << ",\"build_type\":\"" << json_escape(provenance.build_type) << "\""
      << ",\"threads\":" << provenance.threads
      << ",\"cpus\":" << provenance.cpus
      << ",\"obs_enabled\":" << (provenance.obs_enabled ? "true" : "false")
      << ",\"smoke\":" << (provenance.smoke ? "true" : "false")
      << ",\"warmup\":" << provenance.warmup
      << ",\"repetitions\":" << provenance.repetitions << "}";
  out << ",\"benchmarks\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchmarkResult& result = results[i];
    if (i != 0) out << ",";
    out << "{\"name\":\"" << json_escape(result.name) << "\""
        << ",\"description\":\"" << json_escape(result.description) << "\""
        << ",\"items\":" << result.items << ",\"samples_ns\":[";
    for (std::size_t s = 0; s < result.samples_ns.size(); ++s) {
      if (s != 0) out << ",";
      out << format_double(result.samples_ns[s]);
    }
    out << "],\"stats\":{"
        << "\"samples\":" << result.stats.samples
        << ",\"min_ns\":" << format_double(result.stats.min_ns)
        << ",\"max_ns\":" << format_double(result.stats.max_ns)
        << ",\"mean_ns\":" << format_double(result.stats.mean_ns)
        << ",\"median_ns\":" << format_double(result.stats.median_ns)
        << ",\"mad_ns\":" << format_double(result.stats.mad_ns)
        << ",\"ns_per_op\":"
        << format_double(ns_per_op(result.stats, result.items))
        << ",\"items_per_sec\":"
        << format_double(items_per_sec(result.stats, result.items)) << "}";
    out << ",\"failures\":[";
    for (std::size_t f = 0; f < result.failures.size(); ++f) {
      if (f != 0) out << ",";
      out << "\"" << json_escape(result.failures[f]) << "\"";
    }
    out << "]}";
  }
  out << "],\"metrics\":" << metrics_json << "}\n";
  return out.str();
}

}  // namespace bevr::bench
