#include "bevr/bench/compare.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>

#include "bevr/bench/artifact.h"
#include "bevr/bench/json.h"

namespace bevr::bench {

namespace {

/// name → median_ns for every suite in one artifact document.
std::map<std::string, double> suite_medians(const std::string& document,
                                            const char* label) {
  const json::ValuePtr root = [&] {
    try {
      return json::parse(document);
    } catch (const std::runtime_error& error) {
      throw std::runtime_error(std::string(label) + " artifact: " +
                               error.what());
    }
  }();
  const auto require = [&](const json::ValuePtr& value,
                           const char* what) -> json::ValuePtr {
    if (!value) {
      throw std::runtime_error(std::string(label) + " artifact: missing " +
                               what);
    }
    return value;
  };
  const json::ValuePtr schema = require(root->get("schema"), "\"schema\"");
  if (!schema->is_string() || schema->string != kArtifactSchema) {
    throw std::runtime_error(std::string(label) +
                             " artifact: unsupported schema (want \"" +
                             kArtifactSchema + "\")");
  }
  const json::ValuePtr benchmarks =
      require(root->get("benchmarks"), "\"benchmarks\"");
  if (!benchmarks->is_array()) {
    throw std::runtime_error(std::string(label) +
                             " artifact: \"benchmarks\" is not an array");
  }
  std::map<std::string, double> medians;
  for (const json::ValuePtr& entry : benchmarks->array) {
    const json::ValuePtr name = require(entry->get("name"), "benchmark name");
    const json::ValuePtr stats =
        require(entry->get("stats"), "benchmark stats");
    const json::ValuePtr median =
        require(stats->get("median_ns"), "stats.median_ns");
    if (!name->is_string() || !median->is_number()) {
      throw std::runtime_error(std::string(label) +
                               " artifact: malformed benchmark entry");
    }
    medians[name->string] = median->number;
  }
  return medians;
}

}  // namespace

std::size_t CompareReport::regressions() const {
  std::size_t count = 0;
  for (const CompareEntry& entry : entries) {
    if (entry.regressed) ++count;
  }
  return count;
}

std::string CompareReport::render() const {
  std::ostringstream out;
  out << "== baseline compare (median, threshold +"
      << static_cast<int>(threshold * 100.0) << "%) ==\n";
  char line[256];
  std::snprintf(line, sizeof line, "%-32s %14s %14s %8s  %s\n", "suite",
                "baseline_ns", "current_ns", "ratio", "verdict");
  out << line;
  for (const CompareEntry& entry : entries) {
    const char* verdict = entry.regressed          ? "REGRESSED"
                          : entry.only_in_baseline ? "removed"
                          : entry.only_in_current  ? "new"
                                                   : "ok";
    std::snprintf(line, sizeof line, "%-32s %14.4g %14.4g %8.3f  %s\n",
                  entry.name.c_str(), entry.baseline_median_ns,
                  entry.current_median_ns, entry.ratio, verdict);
    out << line;
  }
  const std::size_t regressed = regressions();
  if (regressed == 0) {
    out << "no regressions\n";
  } else {
    out << regressed << " suite(s) regressed beyond the threshold\n";
  }
  return out.str();
}

CompareReport compare_artifacts(const std::string& baseline_json,
                                const std::string& current_json,
                                double threshold) {
  const auto baseline = suite_medians(baseline_json, "baseline");
  const auto current = suite_medians(current_json, "current");

  CompareReport report;
  report.threshold = threshold;
  for (const auto& [name, baseline_median] : baseline) {
    CompareEntry entry;
    entry.name = name;
    entry.baseline_median_ns = baseline_median;
    const auto it = current.find(name);
    if (it == current.end()) {
      entry.only_in_baseline = true;
    } else {
      entry.current_median_ns = it->second;
      entry.ratio = baseline_median > 0.0
                        ? it->second / baseline_median
                        : 1.0;
      entry.regressed = entry.ratio > 1.0 + threshold;
    }
    report.entries.push_back(std::move(entry));
  }
  for (const auto& [name, current_median] : current) {
    if (baseline.find(name) != baseline.end()) continue;
    CompareEntry entry;
    entry.name = name;
    entry.current_median_ns = current_median;
    entry.only_in_current = true;
    report.entries.push_back(std::move(entry));
  }
  std::sort(report.entries.begin(), report.entries.end(),
            [](const CompareEntry& a, const CompareEntry& b) {
              return a.name < b.name;
            });
  return report;
}

}  // namespace bevr::bench
