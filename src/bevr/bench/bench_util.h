// Shared output + grid helpers for the benchmark suites.
//
// Every bench prints aligned, self-describing tables so the series can
// be compared row-by-row against the paper's figures (shape targets:
// who wins, by what factor, where crossovers and peaks fall). The
// harness silences these tables when aggregating many suites; the
// numbers that persist run-to-run live in the BENCH_*.json artifacts.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace bevr::bench {

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_columns(const std::vector<std::string>& names) {
  for (const auto& name : names) std::printf("%14s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < names.size(); ++i) std::printf("%14s", "------");
  std::printf("\n");
}

inline void print_row(const std::vector<double>& values) {
  for (const double v : values) std::printf("%14.6g", v);
  std::printf("\n");
}

inline void print_note(const std::string& note) {
  std::printf("  note: %s\n", note.c_str());
}

/// Log-spaced grid from lo to hi inclusive. A single point degenerates
/// to {lo} (not NaN from 0/0); nonpositive counts give an empty grid.
inline std::vector<double> log_grid(double lo, double hi, int points) {
  if (points <= 0) return {};
  if (points == 1) return {lo};
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / (points - 1);
    grid.push_back(lo * std::pow(hi / lo, t));
  }
  return grid;
}

/// Linear grid from lo to hi inclusive; degenerate counts as log_grid.
inline std::vector<double> linear_grid(double lo, double hi, int points) {
  if (points <= 0) return {};
  if (points == 1) return {lo};
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    grid.push_back(lo + (hi - lo) * static_cast<double>(i) / (points - 1));
  }
  return grid;
}

}  // namespace bevr::bench
