#include "bevr/kernels/sweep_evaluator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "bevr/numerics/quadrature.h"
#include "bevr/numerics/roots.h"

namespace bevr::kernels {

namespace {

// Reusable per-thread scratch for the batched path. Shared across
// evaluators on purpose: resize() only ever grows capacity, so after
// the first sweep the hot loop performs no allocations at all.
struct Workspace {
  std::vector<double> shares;
  std::vector<double> values;
};

Workspace& workspace() {
  thread_local Workspace ws;
  return ws;
}

std::optional<double> detect_indicator(const utility::UtilityFunction& pi) {
  if (const auto* rigid = dynamic_cast<const utility::Rigid*>(&pi)) {
    return rigid->requirement();
  }
  if (const auto* pwl = dynamic_cast<const utility::PiecewiseLinear*>(&pi)) {
    // floor >= 1 degenerates to a step at b = 1 (value() returns only
    // 0 or 1 there); the genuine ramp case has no indicator shortcut.
    if (pwl->floor() >= 1.0) return 1.0;
  }
  return std::nullopt;
}

// Content fingerprint for batch_key(): FNV-1a over the exact bit
// patterns of probed model values. name() strings print only six
// decimals, so the probes carry the discrimination between models
// whose parameters agree to printing precision but not bitwise.
class Fnv1a {
 public:
  void mix(double value) { mix_bits(std::bit_cast<std::uint64_t>(value)); }
  void mix_bits(std::uint64_t bits) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash_ ^= (bits >> shift) & 0xffU;
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::string make_batch_key(const core::VariableLoadModel& model,
                           const dist::DiscreteLoad& load,
                           const utility::UtilityFunction& pi) {
  Fnv1a fp;
  fp.mix(load.mean());
  const std::int64_t k0 = load.min_support();
  fp.mix_bits(static_cast<std::uint64_t>(k0));
  for (const std::int64_t dk : {0, 1, 2, 7, 31, 127, 1023}) {
    fp.mix(load.pmf(k0 + dk));
    fp.mix(load.tail_above(k0 + dk));
  }
  fp.mix(pi.zero_below());
  for (const double b : {0.125, 0.5, 0.97, 1.0, 1.5, 4.0, 64.0}) {
    fp.mix(pi.value(b));
  }
  fp.mix(model.options().tail_eps);
  fp.mix_bits(static_cast<std::uint64_t>(model.options().direct_budget));

  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(fp.hash()));
  return load.name() + "|" + pi.name() + "|#" + hex;
}

}  // namespace

SweepEvaluator::SweepEvaluator(
    std::shared_ptr<const core::VariableLoadModel> model)
    : model_(std::move(model)),
      load_(model_ ? model_->load_ptr() : nullptr),
      pi_(model_ ? model_->util_ptr() : nullptr),
      table_(load_, model_ ? LoadTable::Options{
                                 .tail_eps = model_->options().tail_eps,
                                 .direct_budget =
                                     model_->options().direct_budget,
                             }
                           : LoadTable::Options{}) {
  if (!model_) throw std::invalid_argument("SweepEvaluator: null model");
  mean_ = model_->mean_load();
  b0_ = pi_->zero_below();
  direct_budget_ = model_->options().direct_budget;
  indicator_threshold_ = detect_indicator(*pi_);
  batch_key_ = make_batch_key(*model_, *load_, *pi_);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  batch_terms_ = registry.counter("kernels/batch_terms");
  batch_calls_ = registry.counter("kernels/batch_calls");
  prefix_hits_ = registry.counter("kernels/prefix_hits");
}

numerics::KahanSum SweepEvaluator::direct_sum_state(double capacity,
                                                    std::int64_t k_lo,
                                                    std::int64_t k_hi) const {
  if (indicator_threshold_) {
    // π(C/k) is an indicator: 1 while C/k >= threshold, 0 after. The
    // scalar loop's terms are kpmf(k)·1.0 (== kpmf(k), multiplication
    // by 1.0 is exact) up to the step and kpmf(k)·0.0 (== +0.0, a
    // Neumaier no-op) beyond it, so its final accumulator state is the
    // stored prefix state at the step boundary. Find the boundary by
    // binary search on the same floating-point predicate value() uses:
    // C/kd nonincreasing in k ⇒ the predicate is monotone.
    const double threshold = *indicator_threshold_;
    const std::span<const double> kd = table_.kd();
    const auto lo_index = static_cast<std::size_t>(k_lo - table_.k_lo());
    const auto hi_index = static_cast<std::size_t>(k_hi - table_.k_lo());
    std::size_t lo = lo_index;
    std::size_t hi = hi_index + 1;  // half-open: first index failing
    if (!(capacity / kd[lo_index] >= threshold)) {
      hi = lo_index;  // even the first share is below the step
    } else {
      while (hi - lo > 1) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (capacity / kd[mid] >= threshold) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
    }
    prefix_hits_.inc();
    if (hi == lo_index) return numerics::KahanSum{};
    const std::int64_t k_step =
        table_.k_lo() + static_cast<std::int64_t>(hi) - 1;
    return table_.prefix_mass_state(std::min(k_step, k_hi));
  }

  const auto offset = static_cast<std::size_t>(k_lo - table_.k_lo());
  const auto n = static_cast<std::size_t>(k_hi - k_lo + 1);
  Workspace& ws = workspace();
  if (ws.shares.size() < n) {
    ws.shares.resize(n);
    ws.values.resize(n);
  }
  const std::span<const double> kd = table_.kd().subspan(offset, n);
  const std::span<double> shares(ws.shares.data(), n);
  const std::span<double> values(ws.values.data(), n);
  for (std::size_t i = 0; i < n; ++i) shares[i] = capacity / kd[i];
  pi_->value_batch(shares, values);
  const std::span<const double> kpmf = table_.kpmf().subspan(offset, n);
  numerics::KahanSum sum;
  // Same order, same associativity as the scalar loop: term(k) is
  // (pmf·kd)·π with the (pmf·kd) rounding frozen into the table.
  for (std::size_t i = 0; i < n; ++i) sum.add(kpmf[i] * values[i]);
  batch_calls_.inc();
  batch_terms_.add(static_cast<std::uint64_t>(n));
  return sum;
}

double SweepEvaluator::flow_utility_between(double capacity,
                                            std::int64_t k_lo,
                                            std::int64_t k_hi) const {
  // Clamp-for-clamp mirror of VariableLoadModel::flow_utility_between.
  if (capacity <= 0.0) return 0.0;
  k_lo = std::max<std::int64_t>(std::max<std::int64_t>(k_lo, 1),
                                load_->min_support());
  if (b0_ > 0.0) {
    const auto cutoff =
        static_cast<std::int64_t>(std::floor(capacity / b0_)) + 1;
    k_hi = std::min(k_hi, cutoff);
  }
  const std::int64_t k_exact = table_.k_exact();
  k_hi = std::min(k_hi, std::max(k_exact, k_lo));
  if (k_hi < k_lo) return 0.0;
  if (k_lo != table_.k_lo()) {
    // Every caller starts the series at min_support; a different start
    // would invalidate the prefix tables.
    throw std::logic_error("SweepEvaluator: series start off the table");
  }

  const std::int64_t count = k_hi - k_lo + 1;
  if (count <= direct_budget_) {
    return direct_sum_state(capacity, k_lo, k_hi).value();
  }

  // Hybrid: table-backed head, then the identical integral tail the
  // scalar path computes, resumed into the same accumulator state.
  const std::int64_t k_direct = k_lo + direct_budget_ - 1;
  numerics::KahanSum sum = direct_sum_state(capacity, k_lo, k_direct);
  auto integrand = [this, capacity](double x) {
    return load_->pmf_continuous(x) * x * pi_->value(capacity / x);
  };
  const double lo = static_cast<double>(k_direct) + 0.5;
  const double hi = static_cast<double>(k_hi) + 0.5;
  const auto tail = (k_hi >= k_exact)
                        ? numerics::integrate_to_infinity(integrand, lo, 1e-14,
                                                          1e-11)
                        : numerics::integrate(integrand, lo, hi, 1e-14, 1e-11);
  sum.add(tail.value);
  return sum.value();
}

std::optional<std::int64_t> SweepEvaluator::k_max(double capacity) const {
  return kmax_.k_max(*pi_, capacity);
}

double SweepEvaluator::best_effort(double capacity) const {
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("best_effort: capacity must be >= 0");
  }
  if (capacity == 0.0) return 0.0;
  return flow_utility_between(capacity, load_->min_support(),
                              std::numeric_limits<std::int64_t>::max()) /
         mean_;
}

double SweepEvaluator::reservation(double capacity) const {
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("reservation: capacity must be >= 0");
  }
  if (capacity == 0.0) return 0.0;
  const auto kmax = k_max(capacity);
  if (!kmax) return best_effort(capacity);
  if (*kmax < std::max<std::int64_t>(1, load_->min_support())) return 0.0;
  const double head =
      flow_utility_between(capacity, load_->min_support(), *kmax);
  const double kd = static_cast<double>(*kmax);
  const double tail =
      kd * pi_->value(capacity / kd) * table_.tail_above(*kmax);
  return (head + tail) / mean_;
}

double SweepEvaluator::total_best_effort(double capacity) const {
  return mean_ * best_effort(capacity);
}

double SweepEvaluator::total_reservation(double capacity) const {
  return mean_ * reservation(capacity);
}

double SweepEvaluator::performance_gap(double capacity) const {
  return std::max(0.0, reservation(capacity) - best_effort(capacity));
}

double SweepEvaluator::bandwidth_gap(double capacity) const {
  // Same bracketing walk and Brent options as the scalar model; since
  // best_effort/reservation return identical doubles, the solver takes
  // the identical iterate sequence.
  const double target = reservation(capacity);
  auto deficit = [this, capacity, target](double delta) {
    return best_effort(capacity + delta) - target;
  };
  if (deficit(0.0) >= 0.0) return 0.0;
  double hi = std::max(1.0, 0.25 * mean_);
  constexpr double kSearchCap = 1e12;
  while (deficit(hi) < 0.0) {
    hi *= 2.0;
    if (hi > kSearchCap) return std::numeric_limits<double>::infinity();
  }
  const auto root = numerics::brent(
      deficit, 0.0, hi,
      {.x_tol = 1e-9, .x_rtol = 1e-10, .f_tol = 0.0, .max_iterations = 200});
  return std::max(0.0, root.x);
}

double SweepEvaluator::blocking_fraction(double capacity) const {
  const auto kmax = k_max(capacity);
  if (!kmax) return 0.0;
  if (*kmax < 1) return 1.0;
  const double kd = static_cast<double>(*kmax);
  const double blocked_mass =
      table_.partial_mean_above(*kmax) - kd * table_.tail_above(*kmax);
  return std::clamp(blocked_mass / mean_, 0.0, 1.0);
}

std::vector<SweepEvaluator::Row> SweepEvaluator::evaluate_grid(
    std::span<const double> capacities, bool with_bandwidth_gap) const {
  std::vector<Row> rows(capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    const double c = capacities[i];
    Row& row = rows[i];
    row.capacity = c;
    row.best_effort = best_effort(c);
    row.reservation = reservation(c);
    row.performance_gap = std::max(0.0, row.reservation - row.best_effort);
    if (with_bandwidth_gap) row.bandwidth_gap = bandwidth_gap(c);
    const auto kmax = k_max(c);
    row.k_max = kmax ? static_cast<double>(*kmax) : -1.0;
    row.blocking = blocking_fraction(c);
  }
  return rows;
}

}  // namespace bevr::kernels
