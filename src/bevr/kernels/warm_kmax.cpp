#include "bevr/kernels/warm_kmax.h"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "bevr/core/fixed_load.h"
#include "bevr/obs/metrics.h"

namespace bevr::kernels {

namespace {

// One resume slot per thread: the runner's parallel_for hands each
// worker a strictly increasing sequence of grid indices, so per-thread
// capacities are sorted and a single slot is all the warmth there is.
struct ResumeSlot {
  std::uint64_t owner = 0;  // WarmKmax id; 0 = empty
  double capacity = 0.0;
  std::int64_t k = 0;
};

ResumeSlot& resume_slot() {
  thread_local ResumeSlot slot;
  return slot;
}

std::uint64_t next_warm_kmax_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

obs::Counter warm_hits_counter() {
  static const obs::Counter counter =
      obs::MetricsRegistry::global().counter("kernels/kmax/warm_hits");
  return counter;
}

obs::Counter cold_starts_counter() {
  static const obs::Counter counter =
      obs::MetricsRegistry::global().counter("kernels/kmax/cold_starts");
  return counter;
}

obs::Counter probes_counter() {
  static const obs::Counter counter =
      obs::MetricsRegistry::global().counter("kernels/kmax/probes");
  return counter;
}

}  // namespace

WarmKmax::WarmKmax() : id_(next_warm_kmax_id()) {}

std::optional<std::int64_t> WarmKmax::k_max(
    const utility::UtilityFunction& pi, double capacity) const {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("k_max: capacity must be positive");
  }
  // Closed forms, verbatim from core::k_max — nothing to warm-start.
  if (const auto* rigid = dynamic_cast<const utility::Rigid*>(&pi)) {
    const auto k = static_cast<std::int64_t>(
        std::floor(capacity / rigid->requirement()));
    return k >= 1 ? std::optional<std::int64_t>(k) : std::nullopt;
  }
  if (dynamic_cast<const utility::PiecewiseLinear*>(&pi) != nullptr) {
    const auto k = static_cast<std::int64_t>(std::floor(capacity));
    return k >= 1 ? std::optional<std::int64_t>(k) : std::nullopt;
  }
  if (!pi.inelastic()) return std::nullopt;
  if (!pi.unimodal_total_utility()) {
    // Mixtures: the exhaustive scan is the contract; don't warm-start.
    return core::k_max(pi, capacity);
  }

  ResumeSlot& slot = resume_slot();
  const std::int64_t cap = std::max<std::int64_t>(
      1024, static_cast<std::int64_t>(std::ceil(8.0 * capacity)) + 16);
  const bool warm =
      slot.owner == id_ && capacity >= slot.capacity && slot.k >= 1 &&
      slot.k < cap;
  if (!warm) {
    // Cold (first point, or an out-of-order probe such as a welfare
    // refinement jumping back down the grid): the ternary search is
    // cheaper than climbing from 1.
    cold_starts_counter().inc();
    const auto result = core::k_max(pi, capacity);
    if (result) slot = {id_, capacity, *result};
    return result;
  }

  auto v = [&pi, capacity](std::int64_t k) {
    return core::total_utility(pi, capacity, k);
  };
  // k_max is nondecreasing in capacity, so the previous answer is at or
  // below the new one: climb from there. The descent guard catches a
  // violated invariant (it would mean the utility mis-reports
  // unimodality) by falling back to the full search.
  std::int64_t k = slot.k;
  std::uint64_t probes = 1;
  double vk = v(k);
  if (k > 1) {
    ++probes;
    if (v(k - 1) > vk) {
      probes_counter().add(probes);
      cold_starts_counter().inc();
      const auto result = core::k_max(pi, capacity);
      if (result) slot = {id_, capacity, *result};
      return result;
    }
  }
  while (k < cap) {
    ++probes;
    const double vn = v(k + 1);
    if (!(vn > vk)) break;  // first non-increase = leftmost maximiser
    vk = vn;
    ++k;
  }
  probes_counter().add(probes);
  if (k >= cap) {
    // Still climbing at the safety cap: defer to core::k_max's
    // cap-growth loop (also covers its nullopt give-up behaviour).
    cold_starts_counter().inc();
    const auto result = core::k_max(pi, capacity);
    if (result) slot = {id_, capacity, *result};
    return result;
  }
  warm_hits_counter().inc();
  slot = {id_, capacity, k};
  return k;
}

}  // namespace bevr::kernels
