#include "bevr/kernels/load_table.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "bevr/obs/metrics.h"

namespace bevr::kernels {

namespace {

obs::Counter table_builds_counter() {
  static const obs::Counter counter =
      obs::MetricsRegistry::global().counter("kernels/table_builds");
  return counter;
}

obs::Counter table_terms_counter() {
  static const obs::Counter counter =
      obs::MetricsRegistry::global().counter("kernels/table_terms");
  return counter;
}

}  // namespace

LoadTable::LoadTable(std::shared_ptr<const dist::DiscreteLoad> load,
                     Options options)
    : load_(std::move(load)) {
  if (!load_) throw std::invalid_argument("LoadTable: null load");
  if (!(options.tail_eps > 0.0) || options.tail_eps >= 1.0) {
    throw std::invalid_argument("LoadTable: tail_eps in (0,1) required");
  }
  if (options.direct_budget < 1024) {
    throw std::invalid_argument("LoadTable: direct_budget too small");
  }
  if (options.tail_table_terms < 0) {
    throw std::invalid_argument("LoadTable: tail_table_terms must be >= 0");
  }

  // Same clamps as VariableLoadModel::flow_utility_between, so the
  // table window is exactly the model's direct-summation window.
  k_lo_ = std::max<std::int64_t>(1, load_->min_support());
  k_exact_ = load_->truncation_point(options.tail_eps);
  k_hi_ = std::min(std::max(k_exact_, k_lo_),
                   k_lo_ + options.direct_budget - 1);

  const auto n = static_cast<std::size_t>(k_hi_ - k_lo_ + 1);
  kd_.resize(n);
  pmf_.resize(n);
  kpmf_.resize(n);
  prefix_sum_.resize(n);
  prefix_comp_.resize(n);
  numerics::KahanSum running;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t k = k_lo_ + static_cast<std::int64_t>(i);
    const double kd = static_cast<double>(k);
    const double p = load_->pmf(k);
    kd_[i] = kd;
    pmf_[i] = p;
    // Left-to-right product, matching the scalar term's rounding:
    // (pmf·kd)·π is then one more rounding step in the evaluator.
    kpmf_[i] = p * kd;
    running.add(kpmf_[i]);
    prefix_sum_[i] = running.raw_sum();
    prefix_comp_[i] = running.compensation();
  }

  const auto tail_n = static_cast<std::size_t>(
      std::min<std::int64_t>(static_cast<std::int64_t>(n),
                             options.tail_table_terms));
  tail_above_.resize(tail_n);
  partial_mean_above_.resize(tail_n);
  for (std::size_t i = 0; i < tail_n; ++i) {
    const std::int64_t k = k_lo_ + static_cast<std::int64_t>(i);
    tail_above_[i] = load_->tail_above(k);
    partial_mean_above_[i] = load_->partial_mean_above(k);
  }

  table_builds_counter().inc();
  table_terms_counter().add(static_cast<std::uint64_t>(n));
}

numerics::KahanSum LoadTable::prefix_mass_state(std::int64_t k) const {
  if (k < k_lo_) return numerics::KahanSum{};
  if (k > k_hi_) {
    throw std::out_of_range("LoadTable::prefix_mass_state: k beyond table");
  }
  const auto i = static_cast<std::size_t>(k - k_lo_);
  return numerics::KahanSum{prefix_sum_[i], prefix_comp_[i]};
}

double LoadTable::tail_above(std::int64_t k) const {
  const std::int64_t i = k - k_lo_;
  if (i >= 0 && i < static_cast<std::int64_t>(tail_above_.size())) {
    return tail_above_[static_cast<std::size_t>(i)];
  }
  return load_->tail_above(k);
}

double LoadTable::partial_mean_above(std::int64_t k) const {
  const std::int64_t i = k - k_lo_;
  if (i >= 0 && i < static_cast<std::int64_t>(partial_mean_above_.size())) {
    return partial_mean_above_[static_cast<std::size_t>(i)];
  }
  return load_->partial_mean_above(k);
}

}  // namespace bevr::kernels
