// Flat, build-once tables of a discrete load distribution.
//
// Every figure sweep in the paper evaluates Σ P(k)·k·π(C/k) thousands
// of times over the same load; the scalar model pays two virtual calls
// per summation term (pmf, utility) and re-derives nothing between
// capacities. A LoadTable freezes the capacity-independent half of
// that work at construction: pmf(k), k·pmf(k), tail_above(k) and
// partial_mean_above(k) over the exact direct-summation window
// [k_lo, k_hi] the model would use, as contiguous doubles.
//
// It additionally stores the *Kahan accumulator state* of the running
// sum Σ k·pmf(k) after each term. For step utilities (Rigid, and the
// PiecewiseLinear rigid-degenerate case) the capacity-dependent factor
// π(C/k) is an indicator, so a whole series sum collapses to one O(log)
// boundary search plus an O(1) prefix lookup — and because a Neumaier
// accumulator is left bit-exactly unchanged by adding +0.0 terms, the
// prefix state equals the state a scalar loop reaches after summing the
// zeroed tail, making the shortcut bit-identical, not just close.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bevr/dist/discrete.h"
#include "bevr/numerics/kahan.h"

namespace bevr::kernels {

class LoadTable {
 public:
  /// Sizing knobs. tail_eps / direct_budget must match the
  /// VariableLoadModel::Options of the model the table serves, so the
  /// table window coincides with the model's direct-summation window.
  struct Options {
    double tail_eps = 1e-13;
    std::int64_t direct_budget = 65'536;
    /// tail_above / partial_mean_above are tabulated for at most this
    /// many k values past k_lo (they are per-grid-point lookups, not
    /// inner-loop reads, and each entry can cost a Hurwitz-zeta pair
    /// for heavy-tailed loads); queries past the cap fall back to the
    /// load's virtuals.
    std::int64_t tail_table_terms = 4096;
  };

  LoadTable(std::shared_ptr<const dist::DiscreteLoad> load, Options options);

  /// First tabulated k: max(1, min_support()) — where every model
  /// series starts after clamping.
  [[nodiscard]] std::int64_t k_lo() const { return k_lo_; }
  /// truncation_point(tail_eps): beyond it the model ignores the tail.
  [[nodiscard]] std::int64_t k_exact() const { return k_exact_; }
  /// Last tabulated k: min(max(k_exact, k_lo), k_lo + direct_budget − 1)
  /// — exactly the furthest k a direct summation ever touches.
  [[nodiscard]] std::int64_t k_hi() const { return k_hi_; }
  [[nodiscard]] std::size_t size() const { return kd_.size(); }

  /// k as double, for k in [k_lo, k_hi] (index 0 ↔ k_lo).
  [[nodiscard]] std::span<const double> kd() const { return kd_; }
  /// pmf(k).
  [[nodiscard]] std::span<const double> pmf() const { return pmf_; }
  /// pmf(k)·double(k), rounded exactly as the scalar term computes it.
  [[nodiscard]] std::span<const double> kpmf() const { return kpmf_; }

  /// The Neumaier accumulator state after adding kpmf[k_lo..k] in
  /// order; a default (zero) state for k < k_lo. Requires k <= k_hi().
  [[nodiscard]] numerics::KahanSum prefix_mass_state(std::int64_t k) const;

  /// P[K > k] / E[K·1{K > k}]: table hit for
  /// k in [k_lo, k_lo + tail_table_terms), virtual call otherwise.
  /// Table entries are copies of the virtuals' values, so both paths
  /// return identical doubles.
  [[nodiscard]] double tail_above(std::int64_t k) const;
  [[nodiscard]] double partial_mean_above(std::int64_t k) const;

  [[nodiscard]] const dist::DiscreteLoad& load() const { return *load_; }

 private:
  std::shared_ptr<const dist::DiscreteLoad> load_;
  std::int64_t k_lo_ = 1;
  std::int64_t k_exact_ = 1;
  std::int64_t k_hi_ = 1;
  std::vector<double> kd_;
  std::vector<double> pmf_;
  std::vector<double> kpmf_;
  std::vector<double> prefix_sum_;   // raw Kahan sum after each term
  std::vector<double> prefix_comp_;  // matching compensation
  std::vector<double> tail_above_;
  std::vector<double> partial_mean_above_;
};

}  // namespace bevr::kernels
