// Warm-started admission-threshold search.
//
// k_max(C) = argmax_k k·π(C/k) is monotone nondecreasing in C (raising
// capacity never lowers the optimal admission count — the property
// test in tests/kernels pins this), and sweep grids are sorted. So
// instead of a fresh ternary search per grid point, a WarmKmax resumes
// the hill climb from the previous grid point's answer: after the
// first (cold) point, each subsequent point costs a handful of V(k)
// probes instead of O(log C) — and on a parallel sweep, the runner's
// atomic-claim loop hands each worker increasing indices, so a
// thread-local resume slot stays warm per thread without any sharing.
//
// Results match core::k_max exactly: the paper's single-class
// utilities have strictly unimodal V(k) (plateaus excepted, where both
// searches resolve to the leftmost maximiser), closed forms are reused
// verbatim for Rigid / PiecewiseLinear, and anything the warm scan
// cannot certify (mixtures flagged non-unimodal, cold starts, cap
// overruns) is delegated to core::k_max.
#pragma once

#include <cstdint>
#include <optional>

#include "bevr/utility/utility.h"

namespace bevr::kernels {

class WarmKmax {
 public:
  /// Each instance gets a process-unique id; the thread-local resume
  /// slot is keyed on it so evaluators never inherit another model's
  /// stale state (even after address reuse).
  WarmKmax();

  /// Same contract as core::k_max (throws on capacity <= 0; nullopt
  /// for elastic utilities), same answers.
  [[nodiscard]] std::optional<std::int64_t> k_max(
      const utility::UtilityFunction& pi, double capacity) const;

 private:
  std::uint64_t id_;
};

}  // namespace bevr::kernels
