// Batched sweep evaluation of the variable-load model.
//
// A SweepEvaluator answers the same questions as a VariableLoadModel —
// B(C), R(C), δ(C), Δ(C), θ(C), k_max(C) — but is built for dense
// sorted sweeps instead of isolated points:
//
//  * the load side of every series term comes from a LoadTable
//    (contiguous k·pmf(k) doubles built once, no virtuals in the loop);
//  * the utility side is one value_batch call per evaluation over a
//    reusable thread-local buffer (zero allocations in steady state),
//    or — for step utilities — an O(log) boundary search plus an O(1)
//    Kahan prefix lookup instead of any loop at all;
//  * k_max(C) warm-starts from the previous grid point via WarmKmax.
//
// Equivalence contract: every accessor reproduces the corresponding
// VariableLoadModel result *bit-identically* on this build — the
// kernels reorder no floating-point operation, they only change where
// the operands come from (tables instead of virtual calls) and resume
// compensated sums from stored accumulator states. Equivalence tests
// assert exact equality; the documented external tolerance is 1e-12
// relative, headroom for toolchains that contract a*b+c into fma in
// one translation unit but not the other.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bevr/core/variable_load.h"
#include "bevr/kernels/load_table.h"
#include "bevr/kernels/warm_kmax.h"
#include "bevr/obs/metrics.h"

namespace bevr::kernels {

class SweepEvaluator {
 public:
  /// Wraps an existing model; the table is built here, sized by the
  /// model's own Options so both paths sum the identical window.
  explicit SweepEvaluator(
      std::shared_ptr<const core::VariableLoadModel> model);

  /// Point API, mirroring VariableLoadModel member for member.
  [[nodiscard]] double mean_load() const { return model_->mean_load(); }
  [[nodiscard]] std::optional<std::int64_t> k_max(double capacity) const;
  [[nodiscard]] double best_effort(double capacity) const;
  [[nodiscard]] double reservation(double capacity) const;
  [[nodiscard]] double total_best_effort(double capacity) const;
  [[nodiscard]] double total_reservation(double capacity) const;
  [[nodiscard]] double performance_gap(double capacity) const;
  [[nodiscard]] double bandwidth_gap(double capacity) const;
  [[nodiscard]] double blocking_fraction(double capacity) const;

  /// One row of a whole-grid evaluation.
  struct Row {
    double capacity = 0.0;
    double best_effort = 0.0;
    double reservation = 0.0;
    double performance_gap = 0.0;
    double bandwidth_gap = 0.0;  ///< only when with_bandwidth_gap
    double k_max = -1.0;         ///< −1 encodes "elastic: no threshold"
    double blocking = 0.0;
  };

  /// Evaluate every column across a sorted capacity grid in one call.
  /// Sorted order is what makes the k_max warm start pay; unsorted
  /// grids are still correct, just colder.
  [[nodiscard]] std::vector<Row> evaluate_grid(
      std::span<const double> capacities, bool with_bandwidth_gap) const;

  [[nodiscard]] const core::VariableLoadModel& model() const {
    return *model_;
  }
  [[nodiscard]] const LoadTable& table() const { return table_; }

  /// Identity of the evaluation this kernel performs, for request
  /// batching/coalescing layers: two evaluators with equal batch keys
  /// answer every query bit-identically, so their requests may share
  /// one evaluate_grid call. The key combines the load's and utility's
  /// parameterised names, the accuracy options, and a fingerprint
  /// hashed from exact probed values (pmf, tails, π at fixed points) —
  /// the probes discriminate models whose printed names round to the
  /// same digits.
  [[nodiscard]] const std::string& batch_key() const { return batch_key_; }

 private:
  /// Mirror of VariableLoadModel::flow_utility_between on table data.
  [[nodiscard]] double flow_utility_between(double capacity,
                                            std::int64_t k_lo,
                                            std::int64_t k_hi) const;
  /// Accumulator state of the direct sum over [k_lo, k_hi] (both within
  /// the table window); returned as state, not value, so the hybrid
  /// path can keep adding the integral tail into the same compensation.
  [[nodiscard]] numerics::KahanSum direct_sum_state(double capacity,
                                                    std::int64_t k_lo,
                                                    std::int64_t k_hi) const;

  std::shared_ptr<const core::VariableLoadModel> model_;
  std::shared_ptr<const dist::DiscreteLoad> load_;
  std::shared_ptr<const utility::UtilityFunction> pi_;
  LoadTable table_;
  WarmKmax kmax_;
  double mean_ = 0.0;
  double b0_ = 0.0;  ///< pi->zero_below(), hoisted
  std::int64_t direct_budget_ = 0;
  /// Step-utility threshold (Rigid b̂, or 1.0 for the PiecewiseLinear
  /// rigid-degenerate case); nullopt for everything else.
  std::optional<double> indicator_threshold_;
  std::string batch_key_;  ///< computed once at construction
  obs::Counter batch_terms_;
  obs::Counter batch_calls_;
  obs::Counter prefix_hits_;
};

}  // namespace bevr::kernels
