#include "bevr/net2/fixed_point.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "bevr/numerics/erlang.h"

namespace bevr::net2 {

void MeanFieldSpec::validate() const {
  if (capacity < 1) {
    throw std::invalid_argument("MeanFieldSpec: capacity must be >= 1");
  }
  if (!(pair_load > 0.0) || !std::isfinite(pair_load)) {
    throw std::invalid_argument(
        "MeanFieldSpec: pair_load must be finite and > 0");
  }
  if (trunk_reserve < 0 || trunk_reserve > capacity) {
    throw std::invalid_argument(
        "MeanFieldSpec: trunk_reserve must lie in [0, capacity]");
  }
  if (!(damping > 0.0) || !(damping <= 1.0)) {
    throw std::invalid_argument("MeanFieldSpec: damping must lie in (0, 1]");
  }
  if (max_iterations < 1) {
    throw std::invalid_argument("MeanFieldSpec: max_iterations must be >= 1");
  }
  if (!(tolerance > 0.0) || !std::isfinite(tolerance)) {
    throw std::invalid_argument(
        "MeanFieldSpec: tolerance must be finite and > 0");
  }
}

namespace {

struct LinkBlocking {
  double direct = 0.0;     ///< π_C
  double alternate = 0.0;  ///< Σ_{j >= C-r} π_j
};

/// Stationary blocking of the single-link birth-death chain with
/// down-rate j, up-rate `a + sigma` below C − r and `a` from C − r on.
/// Log-space weights keep C ~ 10⁶ and a ~ C finite (the plain product
/// a^j/j! overflows past a ≈ 700).
LinkBlocking link_blocking(std::int64_t capacity, double a, double sigma,
                           std::int64_t trunk_reserve) {
  const std::size_t c = static_cast<std::size_t>(capacity);
  const std::size_t gate = static_cast<std::size_t>(capacity - trunk_reserve);
  if (trunk_reserve == 0) {
    // Uniform up-rate: exactly M/M/C/C at load a + σ — reuse the
    // stable Erlang-B recursion instead of re-deriving it.
    const double b = numerics::erlang_b(a + sigma, capacity);
    return LinkBlocking{b, b};
  }
  std::vector<double> log_weight(c + 1, 0.0);
  double max_log = 0.0;
  for (std::size_t j = 0; j < c; ++j) {
    const double up = j < gate ? a + sigma : a;
    log_weight[j + 1] =
        log_weight[j] + std::log(up) - std::log(static_cast<double>(j + 1));
    max_log = std::max(max_log, log_weight[j + 1]);
  }
  double total = 0.0;
  double tail = 0.0;  ///< Σ_{j >= gate} w_j
  for (std::size_t j = 0; j <= c; ++j) {
    const double w = std::exp(log_weight[j] - max_log);
    total += w;
    if (j >= gate) tail += w;
  }
  const double top = std::exp(log_weight[c] - max_log);
  return LinkBlocking{top / total, tail / total};
}

}  // namespace

MeanFieldResult evaluate_mean_field(const MeanFieldSpec& spec) {
  spec.validate();
  MeanFieldResult result;
  double sigma = 0.0;
  for (std::int64_t it = 1; it <= spec.max_iterations; ++it) {
    const LinkBlocking b =
        link_blocking(spec.capacity, spec.pair_load, sigma,
                      spec.trunk_reserve);
    // Gibbens–Hunt–Kelly self-consistency: each blocked direct call
    // offers one circuit to each of its two alternate legs, thinned by
    // the other leg's acceptance.
    const double next =
        2.0 * spec.pair_load * b.direct * (1.0 - b.alternate);
    result.iterations = it;
    result.residual = std::abs(next - sigma);
    if (result.residual <= spec.tolerance) {
      sigma = next;
      result.converged = true;
      break;
    }
    sigma = (1.0 - spec.damping) * sigma + spec.damping * next;
  }
  const LinkBlocking b = link_blocking(spec.capacity, spec.pair_load, sigma,
                                       spec.trunk_reserve);
  result.blocking_direct = b.direct;
  result.blocking_alternate = b.alternate;
  // Lost iff the direct link is full and the single overflow attempt
  // fails; the alternate succeeds iff both legs accept independently.
  const double accept = 1.0 - b.alternate;
  result.blocking = b.direct * (1.0 - accept * accept);
  result.overflow_load = sigma;
  return result;
}

}  // namespace bevr::net2
