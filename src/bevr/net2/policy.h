// Network admission policies: the three routing/admission disciplines
// the net2 scenarios compare on identical arrival traces.
//
//  * kBestEffort         — admit every call on its min-hop path; the
//                          flows holding a link split its capacity
//                          evenly, and a call's achieved bandwidth is
//                          its bottleneck share. π is non-decreasing,
//                          so π(min_l b_l) = min_l π(b_l): scoring the
//                          bottleneck IS the per-link degradation
//                          composed along the path.
//  * kDirectReservation  — the paper's reservation architecture per
//                          link: link l admits at most k_max(π, C_l)
//                          calls, each granted the fixed share
//                          C_l/k_max; a path is admitted iff every
//                          link has a slot free (counted admission —
//                          integer slots dodge the C/k·k floating-
//                          point round-trip).
//  * kDar                — circuit-style dynamic alternative routing:
//                          try the min-hop path at the requested rate;
//                          if refused and the pair is adjacent, try
//                          ONE two-hop alternate (chosen by the call's
//                          pre-drawn route_draw) with trunk
//                          reservation r — every alternate link must
//                          keep more than r circuits free after the
//                          grab, protecting direct traffic from
//                          overflow cascades.
//
// A policy sees each call three times, mirroring the single-link
// admission layer: `request` at submit (the routing + admission
// decision), `on_start` when an admitted call begins service (returns
// the bandwidth the engine scores through π), and `on_end` at
// departure. Each policy owns its LinkLedger; the engine audits it
// after every event.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bevr/net2/ledger.h"
#include "bevr/net2/topology.h"
#include "bevr/net2/trace.h"
#include "bevr/utility/utility.h"

namespace bevr::net2 {

enum class NetPolicyKind {
  kBestEffort,
  kDirectReservation,
  kDar,
};

[[nodiscard]] std::string to_string(NetPolicyKind kind);

struct NetPolicyConfig {
  /// Per-flow utility π; required by kDirectReservation (per-link
  /// k_max — throws for elastic utilities where k_max does not exist).
  std::shared_ptr<const utility::UtilityFunction> pi;
  /// kDar trunk reservation r: an alternate-routed call is admitted
  /// only if every alternate link keeps more than r circuits free.
  /// r = 0 disables the protection; on the two-node topology (no
  /// alternates exist) kDar reduces to plain per-link admission.
  double trunk_reserve = 0.0;
  /// kDirectReservation: compute k_max via kernels::WarmKmax
  /// (documented bit-identical to core::k_max, so results never
  /// depend on this).
  bool use_warm_kmax = true;

  /// Throws std::invalid_argument on out-of-range fields.
  void validate() const;
};

class NetPolicy {
 public:
  /// Outcome of a routing + admission request.
  struct Decision {
    bool admitted = false;
    bool alternate = false;     ///< admitted via a two-hop alternate
    double rate = 0.0;          ///< granted bandwidth (0 when blocked)
    std::vector<LinkId> path;   ///< links actually held when admitted
  };

  virtual ~NetPolicy() = default;

  /// Routing + admission decision at submit time; on success the
  /// ledger already holds the path (all-or-nothing with rollback).
  [[nodiscard]] virtual Decision request(const NetFlowRequest& req) = 0;

  /// The call begins service; returns the allocated bandwidth (what
  /// the engine scores through π).
  [[nodiscard]] virtual double on_start(const NetFlowRequest& req,
                                        const Decision& decision) = 0;

  /// The call departs; releases its path.
  virtual void on_end(const NetFlowRequest& req, const Decision& decision) = 0;

  /// The policy's per-link ledger — the engine's invariant-auditing
  /// sink calls ledger().audit() after every event.
  [[nodiscard]] virtual const LinkLedger& ledger() const = 0;
};

/// Build a policy over `topology`. The topology must outlive the
/// policy (held by reference).
[[nodiscard]] std::unique_ptr<NetPolicy> make_net_policy(
    NetPolicyKind kind, const Topology& topology,
    const NetPolicyConfig& config);

}  // namespace bevr::net2
