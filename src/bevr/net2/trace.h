// Network arrival traces: one shared call sequence per experiment.
//
// Exactly like the single-link admission layer, every network policy
// comparison replays one bit-identical trace: differences must come
// from routing and admission, never from the draw. A NetTrace is the
// admission trace generalised with an origin-destination pair per call
// and a pre-drawn `route_draw` — the 64-bit random value a policy may
// consume to make its routing choice (which two-hop alternate a
// blocked DAR call tries). Pre-drawing it into the trace keeps the
// choice identical across policies and thread counts: the draw is
// part of the arrival data, not of the replay.
//
// Generation uses per-pair, per-field Rng::split sub-streams: the
// pair (a, b) with a < b draws from root.split(b*b + a).split(field),
// the Szudzik pairing making the stream id a pure function of the
// endpoints. Growing the topology never perturbs the arrival times of
// the pairs that remain, and changing one field's distribution never
// perturbs the others.
#pragma once

#include <cstdint>
#include <vector>

#include "bevr/admission/trace.h"
#include "bevr/net2/topology.h"
#include "bevr/sim/rng.h"

namespace bevr::net2 {

/// One call as the network layer sees it: a bandwidth request between
/// two nodes, arriving at `submit` and holding for `duration`.
struct NetFlowRequest {
  NodeId src = 0;
  NodeId dst = 1;
  double submit = 0.0;
  double duration = 1.0;
  double rate = 1.0;
  std::uint64_t route_draw = 0;  ///< policy-consumable routing entropy
};

/// A materialised call sequence, sorted by submit time (stable within
/// ties, in pair-major generation order).
struct NetTrace {
  std::vector<NetFlowRequest> requests;
  double horizon = 0.0;
};

/// Recipe for a symmetric network trace: every connected node pair
/// offers independent Poisson calls at `pair_arrival_rate` with
/// exponential holding times.
struct NetTraceSpec {
  double pair_arrival_rate = 1.0;  ///< calls per time unit per pair
  double mean_duration = 1.0;      ///< exponential holding-time mean
  double rate = 1.0;               ///< bandwidth each call requests
  double horizon = 200.0;          ///< stop generating arrivals past this

  /// Throws std::invalid_argument on out-of-range fields.
  void validate() const;
};

/// Generate a trace over every connected unordered node pair of the
/// topology (so star and ring topologies offer calls on genuine
/// multi-link paths, not just adjacent ones). Deterministic in
/// (topology, spec, root.seed()); bit-identical per pair under
/// pair-set growth.
[[nodiscard]] NetTrace generate_net_trace(const Topology& topology,
                                          const NetTraceSpec& spec,
                                          const sim::Rng& root);

/// Lift a single-link admission trace onto the pair (src, dst):
/// identical submit/duration/rate sequence, submit==start semantics
/// (book-ahead and cancellation do not exist on the network layer).
/// The single-link equivalence tests replay one admission trace
/// through both engines and require bit-identical outcomes. Throws
/// std::invalid_argument for requests with book-ahead (start > submit)
/// or pre-start cancellations.
[[nodiscard]] NetTrace from_single_link(const admission::ArrivalTrace& trace,
                                        NodeId src, NodeId dst);

}  // namespace bevr::net2
