#include "bevr/net2/policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "bevr/core/fixed_load.h"
#include "bevr/kernels/warm_kmax.h"

namespace bevr::net2 {

std::string to_string(NetPolicyKind kind) {
  switch (kind) {
    case NetPolicyKind::kBestEffort:
      return "net_best_effort";
    case NetPolicyKind::kDirectReservation:
      return "direct_reservation";
    case NetPolicyKind::kDar:
      return "dar";
  }
  throw std::invalid_argument("to_string: unknown NetPolicyKind");
}

void NetPolicyConfig::validate() const {
  if (!(trunk_reserve >= 0.0) || !std::isfinite(trunk_reserve)) {
    throw std::invalid_argument(
        "NetPolicyConfig: trunk_reserve must be finite and >= 0");
  }
}

namespace {

/// Shared routing state: min-hop paths memoised per node pair (they
/// are pure functions of the topology, so caching cannot change any
/// outcome — it only keeps request() off the BFS in steady state).
class RoutedPolicy : public NetPolicy {
 public:
  explicit RoutedPolicy(const Topology& topology)
      : topology_(topology), ledger_(topology) {}

  [[nodiscard]] const LinkLedger& ledger() const override { return ledger_; }

 protected:
  const std::vector<LinkId>& route(NodeId src, NodeId dst) {
    const auto key = std::make_pair(src, dst);
    auto it = routes_.find(key);
    if (it == routes_.end()) {
      auto path = topology_.shortest_path(src, dst);
      if (!path) {
        throw std::invalid_argument("NetPolicy: no route between nodes " +
                                    std::to_string(src) + " and " +
                                    std::to_string(dst));
      }
      it = routes_.emplace(key, std::move(*path)).first;
    }
    return it->second;
  }

  const Topology& topology_;
  LinkLedger ledger_;

 private:
  std::map<std::pair<NodeId, NodeId>, std::vector<LinkId>> routes_;
};

/// Admit-all on the min-hop path; a call's bandwidth is its bottleneck
/// share, only known once it actually starts (and scored with the
/// share it started with, exactly like the single-link policy).
class NetBestEffortPolicy final : public RoutedPolicy {
 public:
  NetBestEffortPolicy(const Topology& topology, const NetPolicyConfig& config)
      : RoutedPolicy(topology) {
    config.validate();
  }

  Decision request(const NetFlowRequest& req) override {
    return Decision{true, false, req.rate, route(req.src, req.dst)};
  }

  double on_start(const NetFlowRequest&, const Decision& decision) override {
    ledger_.join(decision.path);
    double share = std::numeric_limits<double>::infinity();
    for (const LinkId id : decision.path) {
      share = std::min(share, ledger_.capacity(id) /
                                  static_cast<double>(ledger_.count(id)));
    }
    return share;
  }

  void on_end(const NetFlowRequest&, const Decision& decision) override {
    ledger_.leave(decision.path);
  }
};

/// Per-link reservation architecture: link l admits at most
/// k_max(π, C_l) concurrent calls, each at the fixed share C_l/k_max;
/// a path is admitted iff every link has a slot (atomic, counted).
class DirectReservationPolicy final : public RoutedPolicy {
 public:
  DirectReservationPolicy(const Topology& topology,
                          const NetPolicyConfig& config)
      : RoutedPolicy(topology) {
    config.validate();
    if (!config.pi) {
      throw std::invalid_argument("DirectReservationPolicy: utility required");
    }
    limits_.reserve(topology.link_count());
    shares_.reserve(topology.link_count());
    for (std::size_t i = 0; i < topology.link_count(); ++i) {
      const double capacity = topology.link(static_cast<LinkId>(i)).capacity;
      // WarmKmax and core::k_max are documented to give identical
      // answers, so the use_kernels flag can never change results.
      const auto k = config.use_warm_kmax
                         ? kernels::WarmKmax().k_max(*config.pi, capacity)
                         : core::k_max(*config.pi, capacity);
      if (!k) {
        throw std::invalid_argument(
            "DirectReservationPolicy: elastic utility has no k_max — "
            "admission control cannot help; use best effort");
      }
      limits_.push_back(static_cast<std::int64_t>(*k));
      shares_.push_back(capacity / static_cast<double>(*k));
    }
  }

  Decision request(const NetFlowRequest& req) override {
    const std::vector<LinkId>& path = route(req.src, req.dst);
    if (!ledger_.try_admit_counted(path, limits_)) {
      return Decision{false, false, 0.0, {}};
    }
    double share = std::numeric_limits<double>::infinity();
    for (const LinkId id : path) {
      share = std::min(share, shares_[static_cast<std::size_t>(id)]);
    }
    return Decision{true, false, share, path};
  }

  double on_start(const NetFlowRequest&, const Decision& decision) override {
    return decision.rate;
  }

  void on_end(const NetFlowRequest&, const Decision& decision) override {
    ledger_.release_counted(decision.path);
  }

 private:
  std::vector<std::int64_t> limits_;
  std::vector<double> shares_;
};

/// Circuit-style dynamic alternative routing with trunk reservation:
/// try the min-hop path at the requested rate; a refused adjacent-pair
/// call overflows to ONE two-hop alternate (chosen by its pre-drawn
/// route_draw) admitted only if every alternate link keeps more than
/// `trunk_reserve` circuits free.
class DarPolicy final : public RoutedPolicy {
 public:
  DarPolicy(const Topology& topology, const NetPolicyConfig& config)
      : RoutedPolicy(topology), trunk_reserve_(config.trunk_reserve) {
    config.validate();
  }

  Decision request(const NetFlowRequest& req) override {
    const std::vector<LinkId>& direct = route(req.src, req.dst);
    if (ledger_.try_admit_bandwidth(direct, req.rate)) {
      return Decision{true, false, req.rate, direct};
    }
    // Overflow is a single-link notion: only adjacent pairs have a
    // well-defined two-hop alternate in the DAR sense.
    if (direct.size() == 1) {
      const std::vector<NodeId>& vias = alternates(req.src, req.dst);
      if (!vias.empty()) {
        const NodeId via =
            vias[static_cast<std::size_t>(req.route_draw % vias.size())];
        const std::vector<LinkId> alt{*topology_.find_link(req.src, via),
                                      *topology_.find_link(via, req.dst)};
        // Trunk reservation: admit iff the grab leaves more than
        // trunk_reserve free on each alternate leg. With integer-
        // circuit rates "free - rate >= r" is exactly "free > r after
        // the grab", the Anagnostopoulos et al. rule.
        if (ledger_.try_admit_bandwidth(alt, req.rate, trunk_reserve_)) {
          return Decision{true, true, req.rate, alt};
        }
      }
    }
    return Decision{false, false, 0.0, {}};
  }

  double on_start(const NetFlowRequest&, const Decision& decision) override {
    return decision.rate;
  }

  void on_end(const NetFlowRequest& req, const Decision& decision) override {
    ledger_.release_bandwidth(decision.path, req.rate);
  }

 private:
  const std::vector<NodeId>& alternates(NodeId src, NodeId dst) {
    const auto key = std::make_pair(src, dst);
    auto it = vias_.find(key);
    if (it == vias_.end()) {
      it = vias_.emplace(key, topology_.two_hop_intermediates(src, dst)).first;
    }
    return it->second;
  }

  const double trunk_reserve_;
  std::map<std::pair<NodeId, NodeId>, std::vector<NodeId>> vias_;
};

}  // namespace

std::unique_ptr<NetPolicy> make_net_policy(NetPolicyKind kind,
                                           const Topology& topology,
                                           const NetPolicyConfig& config) {
  switch (kind) {
    case NetPolicyKind::kBestEffort:
      return std::make_unique<NetBestEffortPolicy>(topology, config);
    case NetPolicyKind::kDirectReservation:
      return std::make_unique<DirectReservationPolicy>(topology, config);
    case NetPolicyKind::kDar:
      return std::make_unique<DarPolicy>(topology, config);
  }
  throw std::invalid_argument("make_net_policy: unknown NetPolicyKind");
}

}  // namespace bevr::net2
