// Erlang fixed-point (reduced-load) evaluator for symmetric DAR.
//
// On the fully-connected N-node topology with C unit circuits per
// link, per-pair Poisson load a erlangs, one two-hop overflow attempt
// and trunk reservation r, every link sees the same marginal process
// in the mean-field (N → ∞) limit — the propagation-of-chaos regime
// of Fayolle et al. Each link is a birth-death chain on occupancy
// j ∈ {0..C}: down-rate j, up-rate a + σ while j < C − r (direct plus
// overflow traffic) and a once j ≥ C − r (trunk reservation shuts the
// overflow out). Writing π for its stationary law,
//
//   B_d = π_C                    (direct call blocked: link full)
//   B_a = Σ_{j=C−r}^{C} π_j      (alternate leg refused: ≤ r free)
//
// and the overflow offered to a link is the Gibbens–Hunt–Kelly
// self-consistency condition
//
//   σ = 2 a B_d (1 − B_a)
//
// (each blocked direct call offers one circuit to each of its two
// alternate legs, thinned by the other leg's acceptance). The
// evaluator iterates σ with damped updates until the fixed point is
// reached. For r = 0 the chain is exactly M/M/C/C at load a + σ, so
// B_d = B_a = numerics::erlang_b(a + σ, C) — the code reuses that
// recursion, tying this layer to the single-link Erlang yardstick.
//
// A call is lost iff its direct link is full AND its (single) overflow
// attempt fails, the alternate succeeding iff both legs accept
// independently:  L = B_d · (1 − (1 − B_a)²).
//
// Cost is O(C) per iteration and independent of N — this is the path
// that reaches "millions of flows": a mean-field point at C = 10⁴ and
// a ≈ C erlangs stands for more concurrent calls than the discrete-
// event simulator could replay, at microsecond cost.
#pragma once

#include <cstdint>

namespace bevr::net2 {

/// One symmetric mean-field operating point.
struct MeanFieldSpec {
  std::int64_t capacity = 10;   ///< unit circuits per link (C)
  double pair_load = 5.0;       ///< offered erlangs per node pair (a)
  std::int64_t trunk_reserve = 0;  ///< r, in circuits (0 ≤ r ≤ C)
  double damping = 0.5;         ///< σ ← (1−d)σ + d·σ', d ∈ (0, 1]
  std::int64_t max_iterations = 10000;
  double tolerance = 1e-12;     ///< stop when |σ' − σ| ≤ tolerance

  /// Throws std::invalid_argument on out-of-range fields.
  void validate() const;
};

struct MeanFieldResult {
  double blocking_direct = 0.0;     ///< B_d: direct link full
  double blocking_alternate = 0.0;  ///< B_a: one alternate leg refuses
  double blocking = 0.0;            ///< L: call lost after overflow
  double overflow_load = 0.0;       ///< σ at the fixed point
  std::int64_t iterations = 0;
  bool converged = false;
  double residual = 0.0;            ///< final |σ' − σ|
};

/// Iterate the damped fixed point to convergence (or max_iterations,
/// reported via `converged`). Deterministic: a pure function of spec.
[[nodiscard]] MeanFieldResult evaluate_mean_field(const MeanFieldSpec& spec);

}  // namespace bevr::net2
