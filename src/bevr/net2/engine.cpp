#include "bevr/net2/engine.h"

#include <algorithm>
#include <stdexcept>

#include "bevr/obs/flight_recorder.h"
#include "bevr/obs/metrics.h"
#include "bevr/obs/trace.h"
#include "bevr/sim/event_queue.h"
#include "bevr/sim/metrics.h"

namespace bevr::net2 {

namespace {

/// Mutable run state shared by the event closures (the single-link
/// admission Runner's shape, minus book-ahead and cancellation, which
/// do not exist on the network layer).
struct Runner {
  NetPolicy& policy;
  const utility::UtilityFunction& pi;
  const NetEngineConfig& config;

  sim::EventQueue queue{};

  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  std::uint64_t alternate_routed = 0;
  std::uint64_t active = 0;
  std::uint64_t peak_active = 0;
  std::uint64_t next_flow = 0;  ///< trace-order call index
  sim::RunningStats utility{};
  sim::RunningStats allocated_rate{};

  [[nodiscard]] bool scored(const NetFlowRequest& req) const {
    return req.submit >= config.warmup;
  }

  /// One per-call route decision event, mirrored to the flight
  /// recorder (always on) and the trace collector (when enabled),
  /// carrying the live-call count the decision saw.
  void record_decision(const char* name, obs::FlightCode code,
                       const obs::TraceContext& trace,
                       std::uint64_t flow_index) {
    const double seen = static_cast<double>(active);
    obs::FlightRecorder::global().record(code, trace.trace_id, nullptr, seen,
                                         static_cast<double>(flow_index));
    obs::TraceCollector& collector = obs::TraceCollector::global();
    if (collector.enabled()) {
      obs::TraceEvent event;
      event.name = name;
      event.begin_ns = obs::now_ns();
      event.end_ns = event.begin_ns;
      event.trace_id = trace.trace_id;
      event.span_id = trace.span_id;
      event.value = seen;
      event.flags = obs::TraceEvent::kInstant | obs::TraceEvent::kHasValue;
      collector.record(event);
    }
  }

  void depart(const NetFlowRequest& req, const NetPolicy::Decision& d,
              double rate) {
    policy.on_end(req, d);
    if (active > 0) --active;
    if (scored(req)) {
      utility.add(pi.value(rate));
      allocated_rate.add(rate);
    }
  }

  void start(const NetFlowRequest& req, const NetPolicy::Decision& d) {
    const double rate = policy.on_start(req, d);
    ++active;
    peak_active = std::max(peak_active, active);
    queue.schedule(req.submit + req.duration,
                   [this, req, d, rate] { depart(req, d, rate); });
  }

  void submit(const NetFlowRequest& req) {
    const std::uint64_t flow_index = next_flow++;
    const obs::TraceContext trace =
        obs::TraceContext::derive(config.trace_seed, flow_index);
    const auto decision = policy.request(req);
    const bool in_window = scored(req);
    if (in_window) ++offered;
    if (!decision.admitted) {
      record_decision("net2/block", obs::FlightCode::kBlock, trace,
                      flow_index);
      if (in_window) {
        ++blocked;
        utility.add(0.0);  // blocked calls get zero bandwidth
      }
      return;
    }
    record_decision(
        decision.alternate ? "net2/route_alternate" : "net2/route_direct",
        decision.alternate ? obs::FlightCode::kMark : obs::FlightCode::kAdmit,
        trace, flow_index);
    if (in_window) {
      ++admitted;
      if (decision.alternate) ++alternate_routed;
    }
    queue.schedule(req.submit,
                   [this, req, decision] { start(req, decision); });
  }
};

}  // namespace

NetReport run_network(const NetTrace& trace, NetPolicy& policy,
                      const utility::UtilityFunction& pi,
                      const NetEngineConfig& config) {
  if (!(config.warmup >= 0.0)) {
    throw std::invalid_argument("run_network: warmup must be >= 0");
  }
  Runner runner{policy, pi, config};
  // The trace is sorted by submit, so scheduling in trace order gives
  // simultaneous submits FIFO treatment matching their trace order.
  for (const NetFlowRequest& req : trace.requests) {
    if (req.submit < 0.0 || !(req.duration > 0.0) || !(req.rate > 0.0)) {
      throw std::invalid_argument("run_network: malformed trace request");
    }
    runner.queue.schedule(req.submit, [&runner, req] { runner.submit(req); });
  }
  while (runner.queue.step()) {
    // The invariant-auditing sink: with auditing on, every event must
    // leave the ledger inside its capacity envelope.
    if (config.audit) policy.ledger().audit();
  }

  NetReport report;
  report.offered = runner.offered;
  report.admitted = runner.admitted;
  report.blocked = runner.blocked;
  report.alternate_routed = runner.alternate_routed;
  report.mean_utility = runner.utility.mean();
  report.blocking_probability =
      runner.offered > 0 ? static_cast<double>(runner.blocked) /
                               static_cast<double>(runner.offered)
                         : 0.0;
  report.mean_allocated_rate = runner.allocated_rate.mean();
  report.peak_active = runner.peak_active;
  const LinkLedger& ledger = policy.ledger();
  for (std::size_t i = 0; i < ledger.link_count(); ++i) {
    report.peak_link_count =
        std::max(report.peak_link_count,
                 ledger.peak_count(static_cast<LinkId>(i)));
  }

  // Counters batch locally during the event loop and flush here once,
  // mirroring the admission engine's instrumentation pattern.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  if (config.flush_obs && registry.enabled()) {
    registry.counter("net2/offered").add(report.offered);
    registry.counter("net2/admitted").add(report.admitted);
    registry.counter("net2/blocked").add(report.blocked);
    registry.counter("net2/alternate_routed").add(report.alternate_routed);
    registry.gauge("net2/peak_link_count")
        .set(static_cast<double>(report.peak_link_count));
  }
  return report;
}

}  // namespace bevr::net2
