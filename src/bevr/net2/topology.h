// Multi-link network topologies for the network-axis comparison.
//
// The paper's single shared link becomes a graph: undirected links
// with capacities, nodes identified by dense indices, and paths as
// ordered link sequences. Calls between a node pair occupy bandwidth
// on every link of their path, so blocking on one link cascades into
// rerouting load on the others — exactly the effect the single-link
// analysis cannot see.
//
// Topologies come from declarative specs (two-node, ring, star,
// fully-connected mesh) or from files, and the file reader is a
// hostile-input surface hardened like the admission trace reader
// (tests/net2/test_topology_hostile.cpp): truncated lines, duplicate
// links, self-loops, zero/negative/non-finite capacities, node-count
// blow-ups and garbage bytes all raise std::invalid_argument naming
// the offending line, never undefined behaviour.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace bevr::net2 {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

/// One undirected link. Endpoints are normalised a < b at insertion.
struct Link {
  NodeId a = -1;
  NodeId b = -1;
  double capacity = 0.0;
};

/// An immutable undirected multigraph-free graph with link capacities.
class Topology {
 public:
  /// Throws std::invalid_argument for self-loops, duplicate links,
  /// negative node ids, or capacities that are not finite and > 0.
  void add_link(NodeId a, NodeId b, double capacity);

  [[nodiscard]] std::size_t node_count() const {
    return static_cast<std::size_t>(max_node_ + 1);
  }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const Link& link(LinkId id) const;

  /// The link joining `a` and `b` (order-insensitive), if any.
  [[nodiscard]] std::optional<LinkId> find_link(NodeId a, NodeId b) const;

  /// Nodes adjacent to `node`, in ascending order.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId node) const;

  /// Two-hop alternate intermediates for the pair (a, b): every node w
  /// distinct from both endpoints with links a–w and w–b, ascending.
  /// The DAR policy overflows blocked direct calls onto one of these.
  [[nodiscard]] std::vector<NodeId> two_hop_intermediates(NodeId a,
                                                          NodeId b) const;

  /// Deterministic min-hop path from `a` to `b` as an ordered link-id
  /// sequence (BFS with ties broken toward the lowest-numbered
  /// predecessor, so the answer is a pure function of the topology);
  /// nullopt when unreachable, empty when a == b.
  [[nodiscard]] std::optional<std::vector<LinkId>> shortest_path(
      NodeId a, NodeId b) const;

  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

 private:
  std::vector<Link> links_;
  NodeId max_node_ = -1;
};

enum class TopologyKind {
  kTwoNode,  ///< one link — the paper's single-link setting
  kRing,     ///< N nodes in a cycle
  kStar,     ///< hub node 0, leaves 1..N-1
  kFullMesh, ///< every pair directly linked (the symmetric DAR setting)
  kFile,     ///< loaded from `path`
};

[[nodiscard]] std::string to_string(TopologyKind kind);

/// Declarative recipe for a topology. Synthetic kinds share one
/// capacity across all links (the symmetric setting the mean-field
/// fixed point analyses).
struct TopologySpec {
  TopologyKind kind = TopologyKind::kFullMesh;
  int nodes = 6;            ///< ignored by kTwoNode (always 2) and kFile
  double capacity = 10.0;   ///< per-link bandwidth (synthetic kinds)
  std::string path;         ///< required iff kind == kFile

  /// Throws std::invalid_argument on out-of-range fields.
  void validate() const;
};

/// Materialise the spec. Deterministic: the i-th link of a synthetic
/// topology is a pure function of (kind, nodes, capacity).
[[nodiscard]] Topology build_topology(const TopologySpec& spec);

/// Parse a topology from a stream: one link per line as three
/// whitespace-separated fields `a b capacity` (node ids are
/// nonnegative integers). Blank lines and lines starting with '#' are
/// skipped. Any malformed line raises std::invalid_argument with its
/// line number; so do duplicate links, self-loops, non-positive or
/// non-finite capacities, and node ids past kMaxNodeId.
[[nodiscard]] Topology parse_topology(std::istream& in);

/// parse_topology over the named file; throws std::invalid_argument
/// when the file cannot be opened or parses to zero links.
[[nodiscard]] Topology load_topology(const std::string& path);

/// Hostile-input guard: the largest node id a topology file may name
/// (caps the dense node table a hostile file could otherwise blow up).
inline constexpr NodeId kMaxNodeId = 1 << 20;

}  // namespace bevr::net2
