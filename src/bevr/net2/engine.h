// Event-driven network engine: replays one NetTrace against one
// NetPolicy on a sim::EventQueue and reports aggregate outcomes.
//
// The choreography deliberately mirrors the single-link admission
// engine event for event — the r=0 two-node equivalence tests require
// bit-identical outcomes, which means bit-identical event order and
// bit-identical arithmetic, not just equal statistics:
//
//   submit ──request()──▶ admitted? ──▶ start event (same time)
//      │                      │              │
//      │                      no             ▼
//      │                      ▼         on_start → departure event
//      │                  blocked,                    │
//      │                  scored 0                    │
//      └──────────── score π(allocated rate) ◀────────┘
//
// Calls submitting before `warmup` are simulated (they hold links and
// shape the load every later call sees) but not scored. The engine is
// single-threaded and deterministic: outcomes are a pure function of
// (trace, policy, config). With `audit` set, the policy's LinkLedger
// invariants (no link over capacity, no negative counts) are checked
// after every event — the property suite's invariant-auditing sink.
#pragma once

#include <cstdint>

#include "bevr/net2/policy.h"
#include "bevr/net2/trace.h"
#include "bevr/utility/utility.h"

namespace bevr::net2 {

struct NetEngineConfig {
  double warmup = 0.0;    ///< calls submitting earlier are unscored
  bool flush_obs = true;  ///< batch net2/* counters at run end
  /// Seed for per-call trace ids (obs::TraceContext::derive over the
  /// call's trace order). Route decisions (direct / alternate / block)
  /// are recorded against these ids in the flight recorder always, and
  /// in the trace collector when tracing is enabled — write-only side
  /// channels; outcomes are unchanged.
  std::uint64_t trace_seed = 0;
  /// Audit the policy's LinkLedger after every event; throws
  /// std::logic_error from the run on the first violation.
  bool audit = false;
};

struct NetReport {
  // Counts over scored (post-warmup) calls.
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  std::uint64_t alternate_routed = 0;  ///< admitted via two-hop overflow

  double mean_utility = 0.0;  ///< scored calls; blocked score 0
  /// blocked / offered over the scored window.
  double blocking_probability = 0.0;
  double mean_allocated_rate = 0.0;  ///< scored admitted calls
  std::uint64_t peak_active = 0;     ///< max concurrently-served calls
  /// Largest concurrent flow count any link ever saw (whole run,
  /// warmup included) — the capacity-invariant witness.
  std::int64_t peak_link_count = 0;
};

/// Replay `trace` against `policy`, scoring allocations through `pi`.
[[nodiscard]] NetReport run_network(const NetTrace& trace, NetPolicy& policy,
                                    const utility::UtilityFunction& pi,
                                    const NetEngineConfig& config = {});

}  // namespace bevr::net2
