#include "bevr/net2/topology.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bevr::net2 {

void Topology::add_link(NodeId a, NodeId b, double capacity) {
  if (a < 0 || b < 0) {
    throw std::invalid_argument("Topology: node ids must be >= 0");
  }
  if (a == b) {
    throw std::invalid_argument("Topology: self-loop on node " +
                                std::to_string(a));
  }
  if (!(capacity > 0.0) || !std::isfinite(capacity)) {
    throw std::invalid_argument(
        "Topology: link capacity must be finite and > 0");
  }
  if (a > b) std::swap(a, b);
  if (find_link(a, b)) {
    throw std::invalid_argument("Topology: duplicate link " +
                                std::to_string(a) + "-" + std::to_string(b));
  }
  links_.push_back(Link{a, b, capacity});
  max_node_ = std::max(max_node_, b);
}

const Link& Topology::link(LinkId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= links_.size()) {
    throw std::out_of_range("Topology: unknown link id " + std::to_string(id));
  }
  return links_[static_cast<std::size_t>(id)];
}

std::optional<LinkId> Topology::find_link(NodeId a, NodeId b) const {
  if (a > b) std::swap(a, b);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].a == a && links_[i].b == b) {
      return static_cast<LinkId>(i);
    }
  }
  return std::nullopt;
}

std::vector<NodeId> Topology::neighbors(NodeId node) const {
  std::vector<NodeId> out;
  for (const Link& link : links_) {
    if (link.a == node) out.push_back(link.b);
    if (link.b == node) out.push_back(link.a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Topology::two_hop_intermediates(NodeId a, NodeId b) const {
  std::vector<NodeId> out;
  const NodeId nodes = static_cast<NodeId>(node_count());
  for (NodeId w = 0; w < nodes; ++w) {
    if (w == a || w == b) continue;
    if (find_link(a, w) && find_link(w, b)) out.push_back(w);
  }
  return out;
}

std::optional<std::vector<LinkId>> Topology::shortest_path(NodeId a,
                                                           NodeId b) const {
  const NodeId nodes = static_cast<NodeId>(node_count());
  if (a < 0 || b < 0 || a >= nodes || b >= nodes) {
    throw std::invalid_argument("Topology: shortest_path on unknown node");
  }
  if (a == b) return std::vector<LinkId>{};
  // BFS scanning nodes in ascending order each ring: the parent of any
  // reached node is the lowest-numbered node at the previous depth, so
  // the returned path is deterministic.
  std::vector<LinkId> via(static_cast<std::size_t>(nodes), -1);
  std::vector<NodeId> parent(static_cast<std::size_t>(nodes), -1);
  std::vector<NodeId> frontier{a};
  parent[static_cast<std::size_t>(a)] = a;
  while (!frontier.empty() && parent[static_cast<std::size_t>(b)] < 0) {
    std::vector<NodeId> next;
    for (const NodeId node : frontier) {
      for (const NodeId adj : neighbors(node)) {
        auto& p = parent[static_cast<std::size_t>(adj)];
        if (p >= 0) continue;
        p = node;
        via[static_cast<std::size_t>(adj)] = *find_link(node, adj);
        next.push_back(adj);
      }
    }
    frontier = std::move(next);
  }
  if (parent[static_cast<std::size_t>(b)] < 0) return std::nullopt;
  std::vector<LinkId> path;
  for (NodeId node = b; node != a;
       node = parent[static_cast<std::size_t>(node)]) {
    path.push_back(via[static_cast<std::size_t>(node)]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kTwoNode: return "two_node";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kFullMesh: return "full_mesh";
    case TopologyKind::kFile: return "file";
  }
  throw std::invalid_argument("to_string: unknown TopologyKind");
}

void TopologySpec::validate() const {
  if (kind == TopologyKind::kFile) {
    if (path.empty()) {
      throw std::invalid_argument("TopologySpec: file topologies need a path");
    }
    return;  // remaining knobs are synthetic-only
  }
  if (!(capacity > 0.0) || !std::isfinite(capacity)) {
    throw std::invalid_argument(
        "TopologySpec: capacity must be finite and > 0");
  }
  const int min_nodes = kind == TopologyKind::kTwoNode ? 2 : 3;
  if (kind != TopologyKind::kTwoNode &&
      (nodes < min_nodes || nodes > kMaxNodeId)) {
    throw std::invalid_argument("TopologySpec: " + to_string(kind) +
                                " needs between 3 and " +
                                std::to_string(kMaxNodeId) + " nodes");
  }
}

Topology build_topology(const TopologySpec& spec) {
  spec.validate();
  Topology topology;
  switch (spec.kind) {
    case TopologyKind::kTwoNode:
      topology.add_link(0, 1, spec.capacity);
      break;
    case TopologyKind::kRing:
      for (int i = 0; i < spec.nodes; ++i) {
        topology.add_link(i, (i + 1) % spec.nodes, spec.capacity);
      }
      break;
    case TopologyKind::kStar:
      for (int leaf = 1; leaf < spec.nodes; ++leaf) {
        topology.add_link(0, leaf, spec.capacity);
      }
      break;
    case TopologyKind::kFullMesh:
      for (int a = 0; a < spec.nodes; ++a) {
        for (int b = a + 1; b < spec.nodes; ++b) {
          topology.add_link(a, b, spec.capacity);
        }
      }
      break;
    case TopologyKind::kFile:
      return load_topology(spec.path);
  }
  return topology;
}

namespace {

[[noreturn]] void bad_line(std::size_t line_number, const std::string& what) {
  std::ostringstream msg;
  msg << "parse_topology: line " << line_number << ": " << what;
  throw std::invalid_argument(msg.str());
}

NodeId parse_node(std::istringstream& fields, std::size_t line_number,
                  const char* name) {
  // Read as double first so "1.5" and "1e3" are rejected as non-
  // integers rather than silently truncated, and "-1" gets the range
  // error instead of wrapping.
  double value = 0.0;
  if (!(fields >> value)) {
    bad_line(line_number, std::string("missing or non-numeric ") + name);
  }
  if (!std::isfinite(value) || value < 0.0 ||
      value > static_cast<double>(kMaxNodeId) ||
      value != std::floor(value)) {
    bad_line(line_number, std::string(name) + " must be an integer in [0, " +
                              std::to_string(kMaxNodeId) + "]");
  }
  return static_cast<NodeId>(value);
}

}  // namespace

Topology parse_topology(std::istream& in) {
  Topology topology;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream fields(line);
    const NodeId a = parse_node(fields, line_number, "first node id");
    const NodeId b = parse_node(fields, line_number, "second node id");
    double capacity = 0.0;
    if (!(fields >> capacity)) {
      bad_line(line_number, "missing or non-numeric capacity");
    }
    std::string extra;
    if (fields >> extra) {
      bad_line(line_number, "trailing field '" + extra + "'");
    }
    try {
      topology.add_link(a, b, capacity);
    } catch (const std::invalid_argument& error) {
      bad_line(line_number, error.what());
    }
  }
  return topology;
}

Topology load_topology(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("load_topology: cannot open '" + path + "'");
  }
  Topology topology = parse_topology(in);
  if (topology.link_count() == 0) {
    throw std::invalid_argument("load_topology: '" + path +
                                "' contains no links");
  }
  return topology;
}

}  // namespace bevr::net2
