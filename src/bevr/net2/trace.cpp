#include "bevr/net2/trace.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bevr::net2 {

void NetTraceSpec::validate() const {
  if (!(pair_arrival_rate > 0.0) || !std::isfinite(pair_arrival_rate)) {
    throw std::invalid_argument(
        "NetTraceSpec: pair_arrival_rate must be finite and > 0");
  }
  if (!(mean_duration > 0.0) || !std::isfinite(mean_duration)) {
    throw std::invalid_argument(
        "NetTraceSpec: mean_duration must be finite and > 0");
  }
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("NetTraceSpec: rate must be finite and > 0");
  }
  if (!(horizon > 0.0) || !std::isfinite(horizon)) {
    throw std::invalid_argument("NetTraceSpec: horizon must be finite and > 0");
  }
}

NetTrace generate_net_trace(const Topology& topology, const NetTraceSpec& spec,
                            const sim::Rng& root) {
  spec.validate();
  if (topology.link_count() == 0) {
    throw std::invalid_argument("generate_net_trace: topology has no links");
  }
  NetTrace trace;
  trace.horizon = spec.horizon;
  const double mean_gap = 1.0 / spec.pair_arrival_rate;
  const NodeId nodes = static_cast<NodeId>(topology.node_count());
  for (NodeId src = 0; src < nodes; ++src) {
    for (NodeId dst = src + 1; dst < nodes; ++dst) {
      if (!topology.shortest_path(src, dst)) continue;  // disconnected pair
      // The pair's stream id is the Szudzik pairing of (src, dst) —
      // independent of the node count, so growing the topology never
      // perturbs the arrival times of the pairs that remain. Field
      // sub-streams per pair: 0 interarrivals, 1 durations, 2 route
      // draws; a later field gets stream 3 without perturbing these.
      const std::uint64_t pair_stream =
          static_cast<std::uint64_t>(dst) * static_cast<std::uint64_t>(dst) +
          static_cast<std::uint64_t>(src);
      const sim::Rng pair_root = root.split(pair_stream);
      sim::Rng interarrivals = pair_root.split(0);
      sim::Rng durations = pair_root.split(1);
      sim::Rng route_draws = pair_root.split(2);
      double at = 0.0;
      for (;;) {
        at += interarrivals.exponential(mean_gap);
        if (at > spec.horizon) break;
        NetFlowRequest req;
        req.src = src;
        req.dst = dst;
        req.submit = at;
        req.duration = durations.exponential(spec.mean_duration);
        req.rate = spec.rate;
        req.route_draw = route_draws.engine()();
        trace.requests.push_back(req);
      }
    }
  }
  // Pair-major generation, submit-ordered replay. Stable sort keeps
  // simultaneous submits in pair order, which the goldens pin.
  std::stable_sort(trace.requests.begin(), trace.requests.end(),
                   [](const NetFlowRequest& a, const NetFlowRequest& b) {
                     return a.submit < b.submit;
                   });
  return trace;
}

NetTrace from_single_link(const admission::ArrivalTrace& trace, NodeId src,
                          NodeId dst) {
  NetTrace out;
  out.horizon = trace.horizon;
  out.requests.reserve(trace.requests.size());
  for (const admission::FlowRequest& req : trace.requests) {
    if (req.start != req.submit) {
      throw std::invalid_argument(
          "from_single_link: network calls have no book-ahead "
          "(start must equal submit)");
    }
    if (req.cancel < std::numeric_limits<double>::infinity()) {
      throw std::invalid_argument(
          "from_single_link: network calls have no pre-start cancellation");
    }
    NetFlowRequest net;
    net.src = src;
    net.dst = dst;
    net.submit = req.submit;
    net.duration = req.duration;
    net.rate = req.rate;
    out.requests.push_back(net);
  }
  return out;
}

}  // namespace bevr::net2
