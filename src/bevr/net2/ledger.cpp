#include "bevr/net2/ledger.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace bevr::net2 {

LinkLedger::LinkLedger(const Topology& topology)
    : links_(topology.link_count()) {
  if (links_.empty()) {
    throw std::invalid_argument("LinkLedger: topology has no links");
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    links_[i].capacity = topology.link(static_cast<LinkId>(i)).capacity;
  }
}

LinkLedger::LinkState& LinkLedger::state(LinkId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= links_.size()) {
    throw std::invalid_argument("LinkLedger: unknown link id " +
                                std::to_string(id));
  }
  return links_[static_cast<std::size_t>(id)];
}

const LinkLedger::LinkState& LinkLedger::state(LinkId id) const {
  return const_cast<LinkLedger*>(this)->state(id);
}

void LinkLedger::bump_count(LinkState& link) {
  const std::int64_t now =
      link.count.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::int64_t peak = link.peak.load(std::memory_order_relaxed);
  while (peak < now && !link.peak.compare_exchange_weak(
                           peak, now, std::memory_order_acq_rel,
                           std::memory_order_relaxed)) {
  }
}

bool LinkLedger::try_admit_bandwidth(std::span<const LinkId> path, double rate,
                                     double headroom) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("LinkLedger: rate must be finite and > 0");
  }
  if (!(headroom >= 0.0) || !std::isfinite(headroom)) {
    throw std::invalid_argument(
        "LinkLedger: headroom must be finite and >= 0");
  }
  std::size_t grabbed = 0;
  for (; grabbed < path.size(); ++grabbed) {
    LinkState& link = state(path[grabbed]);
    double expected = link.used.load(std::memory_order_relaxed);
    bool ok = false;
    for (;;) {
      if (expected + rate > link.capacity - headroom) break;
      if (link.used.compare_exchange_weak(expected, expected + rate,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        ok = true;
        break;
      }
    }
    if (!ok) break;
  }
  if (grabbed < path.size()) {
    // Rollback: the refused link was never touched; free the prefix in
    // reverse so the ledger returns to its pre-call state exactly.
    while (grabbed > 0) {
      --grabbed;
      state(path[grabbed]).used.fetch_sub(rate, std::memory_order_acq_rel);
    }
    return false;
  }
  for (const LinkId id : path) bump_count(state(id));
  return true;
}

void LinkLedger::release_bandwidth(std::span<const LinkId> path, double rate) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("LinkLedger: rate must be finite and > 0");
  }
  for (const LinkId id : path) {
    LinkState& link = state(id);
    link.used.fetch_sub(rate, std::memory_order_acq_rel);
    link.count.fetch_sub(1, std::memory_order_acq_rel);
  }
}

bool LinkLedger::try_admit_counted(std::span<const LinkId> path,
                                   std::span<const std::int64_t> limits) {
  if (limits.size() != links_.size()) {
    throw std::invalid_argument(
        "LinkLedger: limits must carry one entry per link");
  }
  std::size_t grabbed = 0;
  for (; grabbed < path.size(); ++grabbed) {
    LinkState& link = state(path[grabbed]);
    const std::int64_t limit = limits[static_cast<std::size_t>(path[grabbed])];
    std::int64_t expected = link.count.load(std::memory_order_relaxed);
    bool ok = false;
    for (;;) {
      if (expected >= limit) break;
      if (link.count.compare_exchange_weak(expected, expected + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        ok = true;
        break;
      }
    }
    if (!ok) break;
  }
  if (grabbed < path.size()) {
    while (grabbed > 0) {
      --grabbed;
      state(path[grabbed]).count.fetch_sub(1, std::memory_order_acq_rel);
    }
    return false;
  }
  // Counted admission already holds the slots; fold the peaks in now.
  for (const LinkId id : path) {
    LinkState& link = state(id);
    const std::int64_t now = link.count.load(std::memory_order_acquire);
    std::int64_t peak = link.peak.load(std::memory_order_relaxed);
    while (peak < now && !link.peak.compare_exchange_weak(
                             peak, now, std::memory_order_acq_rel,
                             std::memory_order_relaxed)) {
    }
  }
  return true;
}

void LinkLedger::release_counted(std::span<const LinkId> path) {
  for (const LinkId id : path) {
    state(id).count.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void LinkLedger::join(std::span<const LinkId> path) {
  for (const LinkId id : path) bump_count(state(id));
}

void LinkLedger::leave(std::span<const LinkId> path) {
  for (const LinkId id : path) {
    state(id).count.fetch_sub(1, std::memory_order_acq_rel);
  }
}

double LinkLedger::used(LinkId id) const {
  return state(id).used.load(std::memory_order_acquire);
}

std::int64_t LinkLedger::count(LinkId id) const {
  return state(id).count.load(std::memory_order_acquire);
}

std::int64_t LinkLedger::peak_count(LinkId id) const {
  return state(id).peak.load(std::memory_order_acquire);
}

double LinkLedger::capacity(LinkId id) const { return state(id).capacity; }

void LinkLedger::audit() const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const LinkState& link = links_[i];
    const double used = link.used.load(std::memory_order_acquire);
    // Bandwidth bookkeeping is add/subtract of identical quantities,
    // so the tolerance only needs to absorb accumulation ulps.
    const double slack = 1e-9 * (1.0 + link.capacity);
    if (used > link.capacity + slack || used < -slack) {
      throw std::logic_error("LinkLedger: link " + std::to_string(i) +
                             " committed " + std::to_string(used) +
                             " outside [0, " + std::to_string(link.capacity) +
                             "]");
    }
    if (link.count.load(std::memory_order_acquire) < 0) {
      throw std::logic_error("LinkLedger: link " + std::to_string(i) +
                             " has a negative flow count");
    }
  }
}

}  // namespace bevr::net2
