// Per-link capacity ledger with atomic path admission.
//
// A path is admitted iff *every* link on it admits; partial grabs must
// never be observable as admitted state. The ledger implements this
// with per-link lock-free bookkeeping and explicit rollback: links are
// grabbed one by one (CAS on the link's committed bandwidth), and the
// first link that refuses rolls the already-grabbed prefix back before
// the call returns false. Under concurrency a competing path may see
// the transient prefix and be refused spuriously — that is the
// conservative direction (capacity is never oversubscribed, which the
// TSan storm tests pin); the discrete-event engine itself is
// single-threaded, where admit-check-then-commit is exact.
//
// Two admission currencies, matching the network policies:
//  * bandwidth  — DAR-style circuits: grab `rate` under the link
//                 capacity, with an optional `headroom` the grab must
//                 leave free (trunk reservation: an alternate-routed
//                 call is admitted only if every alternate link keeps
//                 more than r circuits free);
//  * counted    — reservation architecture: grab one of k_max_l slots
//                 per link (integer counts dodge the C/k·k floating-
//                 point round-trip that bandwidth bookkeeping would
//                 make of the same rule).
// Best-effort `join`/`leave` is counted admission with no limit: it
// can never fail, it only records sharing degree per link.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "bevr/net2/topology.h"

namespace bevr::net2 {

class LinkLedger {
 public:
  explicit LinkLedger(const Topology& topology);

  // Ledgers pin per-link atomics; they are not movable.
  LinkLedger(const LinkLedger&) = delete;
  LinkLedger& operator=(const LinkLedger&) = delete;

  /// Grab `rate` bandwidth on every link of `path`, leaving at least
  /// `headroom` free on each; all-or-nothing. Increments each link's
  /// flow count on success. Throws std::invalid_argument for unknown
  /// link ids, rate <= 0, or headroom < 0.
  [[nodiscard]] bool try_admit_bandwidth(std::span<const LinkId> path,
                                         double rate, double headroom = 0.0);

  /// Release a bandwidth grab (exact inverse of try_admit_bandwidth).
  void release_bandwidth(std::span<const LinkId> path, double rate);

  /// Grab one slot on every link of `path`, where link l admits iff
  /// its flow count is below `limits[l]` (indexed by link id, one
  /// entry per link); all-or-nothing.
  [[nodiscard]] bool try_admit_counted(std::span<const LinkId> path,
                                       std::span<const std::int64_t> limits);

  /// Release a counted grab.
  void release_counted(std::span<const LinkId> path);

  /// Unconditional count increment along `path` (best-effort sharing).
  void join(std::span<const LinkId> path);
  /// Inverse of join.
  void leave(std::span<const LinkId> path);

  /// Bandwidth currently committed on the link.
  [[nodiscard]] double used(LinkId id) const;
  /// Flows currently holding the link (any admission currency).
  [[nodiscard]] std::int64_t count(LinkId id) const;
  /// Largest concurrent flow count the link ever saw.
  [[nodiscard]] std::int64_t peak_count(LinkId id) const;
  [[nodiscard]] double capacity(LinkId id) const;
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Invariant audit: every link's committed bandwidth lies in
  /// [0, capacity] (to a 1-ulp-scaled tolerance) and no flow count is
  /// negative. Throws std::logic_error naming the violating link —
  /// the engine's auditing hook calls this after every event.
  void audit() const;

 private:
  struct LinkState {
    double capacity = 0.0;
    std::atomic<double> used{0.0};
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> peak{0};
  };

  LinkState& state(LinkId id);
  const LinkState& state(LinkId id) const;
  void bump_count(LinkState& link);

  std::vector<LinkState> links_;
};

}  // namespace bevr::net2
