#include "bevr/dist/sampler.h"

#include <algorithm>
#include <stdexcept>

#include "bevr/numerics/kahan.h"

namespace bevr::dist {

DiscreteSampler::DiscreteSampler(const DiscreteLoad& load, double tail_eps)
    : load_(load), first_(load.min_support()) {
  if (!(tail_eps > 0.0) || tail_eps >= 1.0) {
    throw std::invalid_argument("DiscreteSampler: tail_eps must be in (0, 1)");
  }
  const std::int64_t last = load.truncation_point(tail_eps);
  const std::int64_t count = last - first_ + 1;
  if (count <= 0 || count > (1LL << 28)) {
    throw std::invalid_argument("DiscreteSampler: unreasonable table size");
  }
  cdf_.reserve(static_cast<std::size_t>(count));
  numerics::KahanSum acc;
  for (std::int64_t k = first_; k <= last; ++k) {
    acc.add(load.pmf(k));
    cdf_.push_back(std::min(1.0, acc.value()));
  }
}

std::int64_t DiscreteSampler::sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double u = uniform(rng);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it != cdf_.end()) {
    return first_ + static_cast<std::int64_t>(it - cdf_.begin());
  }
  // Tail fallback: walk the pmf beyond the table.
  std::int64_t k = first_ + static_cast<std::int64_t>(cdf_.size());
  double mass = cdf_.back();
  while (mass < u) {
    const double p = load_.pmf(k);
    mass += p;
    if (mass >= u || p <= 0.0) break;
    ++k;
  }
  return k;
}

}  // namespace bevr::dist
