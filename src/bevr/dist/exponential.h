// Exponential (geometric) load distribution,
//   P(k) = (1 - e^{-β}) e^{-βk},  k = 0, 1, 2, ...   (paper §3.1)
// with mean k̄ = 1/(e^β - 1). Models load that "decays over the whole
// range at an exponential rate" rather than peaking near the mean.
#pragma once

#include "bevr/dist/discrete.h"

namespace bevr::dist {

class ExponentialLoad final : public DiscreteLoad {
 public:
  /// β > 0 is the decay rate of the geometric tail.
  explicit ExponentialLoad(double beta);

  /// Construct with a target mean: β = ln(1 + 1/mean).
  [[nodiscard]] static ExponentialLoad with_mean(double mean);

  [[nodiscard]] double pmf(std::int64_t k) const override;
  [[nodiscard]] double tail_above(std::int64_t k) const override;
  [[nodiscard]] double cdf(std::int64_t k) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double second_moment() const override;
  [[nodiscard]] double partial_mean_above(std::int64_t k) const override;
  [[nodiscard]] double pmf_continuous(double k) const override;
  [[nodiscard]] std::int64_t min_support() const override { return 0; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double beta() const { return beta_; }

 private:
  double beta_;
  double q_;  ///< e^{-β}, the geometric ratio
};

}  // namespace bevr::dist
