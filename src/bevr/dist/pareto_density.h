// Continuum algebraic (Pareto) load: p(k) = (z-1) k^{-z} on [1, ∞),
// mean (z-1)/(z-2) for z > 2 (paper §3.2). The paper's strongest
// reservations-favouring results live here, in the z → 2⁺ limit.
#pragma once

#include "bevr/dist/continuum.h"

namespace bevr::dist {

class ParetoDensity final : public ContinuumLoad {
 public:
  /// Requires z > 2 so the mean is finite.
  explicit ParetoDensity(double z);

  [[nodiscard]] double density(double k) const override;
  [[nodiscard]] double tail_above(double k) const override;
  [[nodiscard]] double partial_mean_below(double k) const override;
  [[nodiscard]] double mean() const override { return (z_ - 1.0) / (z_ - 2.0); }
  [[nodiscard]] double min_support() const override { return 1.0; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double z() const { return z_; }

 private:
  double z_;
};

}  // namespace bevr::dist
