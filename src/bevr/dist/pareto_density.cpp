#include "bevr/dist/pareto_density.h"

#include <cmath>
#include <stdexcept>

namespace bevr::dist {

ParetoDensity::ParetoDensity(double z) : z_(z) {
  if (!(z > 2.0)) {
    throw std::invalid_argument("ParetoDensity: z must exceed 2 (finite mean)");
  }
}

double ParetoDensity::density(double k) const {
  if (k < 1.0) return 0.0;
  return (z_ - 1.0) * std::pow(k, -z_);
}

double ParetoDensity::tail_above(double k) const {
  if (k <= 1.0) return 1.0;
  return std::pow(k, 1.0 - z_);
}

double ParetoDensity::partial_mean_below(double k) const {
  if (k <= 1.0) return 0.0;
  // ∫_1^k x (z-1) x^{-z} dx = (z-1)/(z-2) (1 - k^{2-z}).
  return mean() * (1.0 - std::pow(k, 2.0 - z_));
}

std::string ParetoDensity::name() const {
  return "ParetoDensity(z=" + std::to_string(z_) + ")";
}

}  // namespace bevr::dist
