// Continuum exponential load: p(k) = β e^{-βk} on [0, ∞), mean 1/β.
#pragma once

#include "bevr/dist/continuum.h"

namespace bevr::dist {

class ExponentialDensity final : public ContinuumLoad {
 public:
  explicit ExponentialDensity(double beta);

  /// β = 1/mean.
  [[nodiscard]] static ExponentialDensity with_mean(double mean);

  [[nodiscard]] double density(double k) const override;
  [[nodiscard]] double tail_above(double k) const override;
  [[nodiscard]] double partial_mean_below(double k) const override;
  [[nodiscard]] double mean() const override { return 1.0 / beta_; }
  [[nodiscard]] double min_support() const override { return 0.0; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double beta() const { return beta_; }

 private:
  double beta_;
};

}  // namespace bevr::dist
