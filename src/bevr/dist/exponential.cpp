#include "bevr/dist/exponential.h"

#include <cmath>
#include <stdexcept>

namespace bevr::dist {

ExponentialLoad::ExponentialLoad(double beta)
    : beta_(beta), q_(std::exp(-beta)) {
  if (!(beta > 0.0) || !std::isfinite(beta)) {
    throw std::invalid_argument("ExponentialLoad: beta must be positive");
  }
}

ExponentialLoad ExponentialLoad::with_mean(double mean) {
  if (!(mean > 0.0)) {
    throw std::invalid_argument("ExponentialLoad::with_mean: mean must be > 0");
  }
  return ExponentialLoad(std::log1p(1.0 / mean));
}

double ExponentialLoad::pmf(std::int64_t k) const {
  if (k < 0) return 0.0;
  return -std::expm1(-beta_) * std::exp(-beta_ * static_cast<double>(k));
}

double ExponentialLoad::tail_above(std::int64_t k) const {
  if (k < 0) return 1.0;
  // Σ_{j>k} (1-q)q^j = q^{k+1}.
  return std::exp(-beta_ * static_cast<double>(k + 1));
}

double ExponentialLoad::cdf(std::int64_t k) const {
  if (k < 0) return 0.0;
  // 1 − q^{k+1} computed without cancellation.
  return -std::expm1(-beta_ * static_cast<double>(k + 1));
}

double ExponentialLoad::mean() const {
  // q/(1-q) = 1/(e^β - 1).
  return 1.0 / std::expm1(beta_);
}

double ExponentialLoad::second_moment() const {
  // E[K²] = q(1+q)/(1-q)² for a geometric on {0,1,...}.
  const double one_minus_q = -std::expm1(-beta_);
  return q_ * (1.0 + q_) / (one_minus_q * one_minus_q);
}

double ExponentialLoad::partial_mean_above(std::int64_t k) const {
  // Σ_{j>k} j(1-q)q^j = q^{k+1}·((k+1) - k·q)/(1-q).
  if (k < 0) return mean();
  const double kd = static_cast<double>(k);
  const double one_minus_q = -std::expm1(-beta_);
  return std::pow(q_, kd + 1.0) * ((kd + 1.0) - kd * q_) / one_minus_q;
}

double ExponentialLoad::pmf_continuous(double k) const {
  if (k < 0.0) return 0.0;
  return -std::expm1(-beta_) * std::exp(-beta_ * k);
}

std::string ExponentialLoad::name() const {
  return "Exponential(beta=" + std::to_string(beta_) + ")";
}

}  // namespace bevr::dist
