#include "bevr/dist/poisson.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bevr/numerics/kahan.h"

#include "bevr/numerics/special.h"

namespace bevr::dist {

PoissonLoad::PoissonLoad(double nu) : nu_(nu) {
  if (!(nu > 0.0) || !std::isfinite(nu)) {
    throw std::invalid_argument("PoissonLoad: nu must be positive and finite");
  }
}

double PoissonLoad::pmf(std::int64_t k) const {
  if (k < 0) return 0.0;
  return numerics::poisson_pmf(k, nu_);
}

double PoissonLoad::tail_above(std::int64_t k) const {
  return numerics::poisson_tail_above(k, nu_);
}

double PoissonLoad::cdf(std::int64_t k) const {
  if (k < 0) return 0.0;
  // Below the mean, sum the pmf upward (cancellation-free); above it,
  // complement the stably-summed tail.
  if (static_cast<double>(k) < nu_) {
    numerics::KahanSum sum;
    double term = numerics::poisson_pmf(0, nu_);
    for (std::int64_t j = 0; j <= k; ++j) {
      sum.add(term);
      term *= nu_ / static_cast<double>(j + 1);
    }
    return std::min(1.0, sum.value());
  }
  return std::clamp(1.0 - tail_above(k), 0.0, 1.0);
}

double PoissonLoad::partial_mean_above(std::int64_t k) const {
  // Σ_{j>k} j·e^{-ν}ν^j/j! = ν·Σ_{j>k} e^{-ν}ν^{j-1}/(j-1)! = ν·P[K > k-1].
  return nu_ * tail_above(k - 1);
}

double PoissonLoad::pmf_continuous(double k) const {
  if (k < 0.0) return 0.0;
  return std::exp(k * std::log(nu_) - nu_ -
                  numerics::lgamma_threadsafe(k + 1.0));
}

std::string PoissonLoad::name() const {
  return "Poisson(nu=" + std::to_string(nu_) + ")";
}

}  // namespace bevr::dist
