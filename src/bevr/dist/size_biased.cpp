#include "bevr/dist/size_biased.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "bevr/numerics/kahan.h"
#include "bevr/numerics/series.h"

namespace bevr::dist {

SizeBiasedLoad::SizeBiasedLoad(std::shared_ptr<const DiscreteLoad> base)
    : base_(std::move(base)) {
  if (!base_) throw std::invalid_argument("SizeBiasedLoad: null base");
  base_mean_ = base_->mean();
  if (!(base_mean_ > 0.0) || !std::isfinite(base_mean_)) {
    throw std::invalid_argument("SizeBiasedLoad: base mean must be finite/positive");
  }
}

double SizeBiasedLoad::pmf(std::int64_t k) const {
  if (k < 1) return 0.0;  // the k=0 configuration carries no flows
  return base_->pmf(k) * static_cast<double>(k) / base_mean_;
}

double SizeBiasedLoad::tail_above(std::int64_t k) const {
  return base_->partial_mean_above(k) / base_mean_;
}

double SizeBiasedLoad::cdf(std::int64_t k) const {
  if (k < min_support()) return 0.0;
  // Direct head sum for small k (cancellation-free); tail complement
  // beyond a threshold.
  constexpr std::int64_t kDirectCdfTerms = 65'536;
  if (k - min_support() <= kDirectCdfTerms) {
    numerics::KahanSum sum;
    for (std::int64_t j = min_support(); j <= k; ++j) sum.add(pmf(j));
    return std::min(1.0, sum.value());
  }
  return std::clamp(1.0 - tail_above(k), 0.0, 1.0);
}

double SizeBiasedLoad::mean() const {
  const double m2 = base_->second_moment();
  return m2 / base_mean_;  // may be +inf for heavy-tailed bases
}

double SizeBiasedLoad::second_moment() const {
  // E_Q[K²] = E_P[K³]/k̄; evaluated numerically (may diverge -> +inf).
  const auto sum = numerics::sum_until_negligible(
      [this](std::int64_t k) {
        const double kd = static_cast<double>(k);
        return base_->pmf(k) * kd * kd * kd / base_mean_;
      },
      std::max<std::int64_t>(1, base_->min_support()),
      {.rel_tol = 1e-12, .abs_tol = 1e-300, .consecutive_small = 32,
       .max_terms = 10'000'000});
  return sum.converged ? sum.value : std::numeric_limits<double>::infinity();
}

double SizeBiasedLoad::partial_mean_above(std::int64_t k) const {
  // Σ_{j>k} j·Q(j) = Σ_{j>k} j²·P(j)/k̄; numeric, with exact-tail guard.
  const auto sum = numerics::sum_until_negligible(
      [this, k](std::int64_t i) {
        const std::int64_t j = k + 1 + i;
        const double jd = static_cast<double>(j);
        return base_->pmf(j) * jd * jd / base_mean_;
      },
      0,
      {.rel_tol = 1e-12, .abs_tol = 1e-300, .consecutive_small = 32,
       .max_terms = 10'000'000});
  return sum.converged ? sum.value : std::numeric_limits<double>::infinity();
}

double SizeBiasedLoad::pmf_continuous(double k) const {
  if (k <= 0.0) return 0.0;
  return base_->pmf_continuous(k) * k / base_mean_;
}

std::int64_t SizeBiasedLoad::min_support() const {
  return std::max<std::int64_t>(1, base_->min_support());
}

std::string SizeBiasedLoad::name() const {
  return "SizeBiased[" + base_->name() + "]";
}

MaxOfSLoad::MaxOfSLoad(std::shared_ptr<const DiscreteLoad> base, int samples)
    : base_(std::move(base)), samples_(samples) {
  if (!base_) throw std::invalid_argument("MaxOfSLoad: null base");
  if (samples < 1) throw std::invalid_argument("MaxOfSLoad: samples must be >= 1");
}

double MaxOfSLoad::pmf(std::int64_t k) const {
  if (k < base_->min_support()) return 0.0;
  const double fk = base_->cdf(k);
  const double fk1 = base_->cdf(k - 1);
  return std::pow(fk, samples_) - std::pow(fk1, samples_);
}

double MaxOfSLoad::tail_above(std::int64_t k) const {
  // P[max > k] = 1 - F(k)^S.
  const double fk = base_->cdf(k);
  if (fk <= 0.0) return 1.0;
  if (samples_ == 1) return 1.0 - fk;
  return -std::expm1(static_cast<double>(samples_) * std::log(fk));
}

double MaxOfSLoad::cdf(std::int64_t k) const {
  return std::pow(base_->cdf(k), static_cast<double>(samples_));
}

double MaxOfSLoad::mean() const {
  // E[M] = Σ_{k≥0} P[M > k].
  const auto sum = numerics::sum_until_negligible(
      [this](std::int64_t k) { return tail_above(k); }, 0,
      {.rel_tol = 1e-12, .abs_tol = 1e-300, .consecutive_small = 32,
       .max_terms = 10'000'000});
  return sum.converged ? sum.value : std::numeric_limits<double>::infinity();
}

double MaxOfSLoad::second_moment() const {
  // E[M²] = Σ_{k≥0} (2k+1)·P[M > k].
  const auto sum = numerics::sum_until_negligible(
      [this](std::int64_t k) {
        return (2.0 * static_cast<double>(k) + 1.0) * tail_above(k);
      },
      0,
      {.rel_tol = 1e-12, .abs_tol = 1e-300, .consecutive_small = 32,
       .max_terms = 10'000'000});
  return sum.converged ? sum.value : std::numeric_limits<double>::infinity();
}

double MaxOfSLoad::partial_mean_above(std::int64_t k) const {
  const auto sum = numerics::sum_until_negligible(
      [this, k](std::int64_t i) {
        const std::int64_t j = k + 1 + i;
        return pmf(j) * static_cast<double>(j);
      },
      0,
      {.rel_tol = 1e-12, .abs_tol = 1e-300, .consecutive_small = 32,
       .max_terms = 10'000'000});
  return sum.converged ? sum.value : std::numeric_limits<double>::infinity();
}

double MaxOfSLoad::pmf_continuous(double k) const {
  // f_M(x) ≈ S·F(⌊x⌋)^{S-1}·f(x): exact in the S=1 case and
  // asymptotically exact in the tail, where F ≈ 1. Used only to
  // accelerate far-tail sums, never near the body.
  const double f = base_->cdf(static_cast<std::int64_t>(std::floor(k)));
  return static_cast<double>(samples_) *
         std::pow(f, static_cast<double>(samples_ - 1)) *
         base_->pmf_continuous(k);
}

std::int64_t MaxOfSLoad::min_support() const { return base_->min_support(); }

std::string MaxOfSLoad::name() const {
  return "MaxOf" + std::to_string(samples_) + "[" + base_->name() + "]";
}

}  // namespace bevr::dist
