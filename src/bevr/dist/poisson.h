// Poisson load distribution, P(k) = e^{-ν} ν^k / k!  (paper §3.1).
//
// Models tightly controlled load: "excursions to large (or small)
// loads are extremely rare" — the stationary occupancy of an M/M/∞
// system with offered load ν (which bevr::sim verifies empirically).
#pragma once

#include "bevr/dist/discrete.h"

namespace bevr::dist {

class PoissonLoad final : public DiscreteLoad {
 public:
  /// ν > 0 is both the mean and the variance.
  explicit PoissonLoad(double nu);

  /// Mean-parameterised construction (ν = mean), used by the retry
  /// extension which inflates the offered load.
  [[nodiscard]] static PoissonLoad with_mean(double mean) {
    return PoissonLoad(mean);
  }

  [[nodiscard]] double pmf(std::int64_t k) const override;
  [[nodiscard]] double tail_above(std::int64_t k) const override;
  [[nodiscard]] double cdf(std::int64_t k) const override;
  [[nodiscard]] double mean() const override { return nu_; }
  [[nodiscard]] double second_moment() const override {
    return nu_ * (nu_ + 1.0);
  }
  [[nodiscard]] double partial_mean_above(std::int64_t k) const override;
  [[nodiscard]] double pmf_continuous(double k) const override;
  [[nodiscard]] std::int64_t min_support() const override { return 0; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double nu() const { return nu_; }

 private:
  double nu_;
};

}  // namespace bevr::dist
