// Continuum load densities for the analytically tractable model
// (paper §3.2): the load level k varies continuously on [0, ∞) (or
// [1, ∞) for the Pareto form). Closed-form partial moments are exposed
// so the continuum model's B, R, δ, Δ can be written exactly and then
// cross-validated against quadrature.
#pragma once

#include <string>

namespace bevr::dist {

/// Interface for a continuous probability density over load levels.
class ContinuumLoad {
 public:
  virtual ~ContinuumLoad() = default;

  /// Density p(k); zero below min_support().
  [[nodiscard]] virtual double density(double k) const = 0;

  /// ∫_k^∞ p(x) dx.
  [[nodiscard]] virtual double tail_above(double k) const = 0;

  /// ∫_{min}^{k} x·p(x) dx — the mass of flows at load levels up to k.
  [[nodiscard]] virtual double partial_mean_below(double k) const = 0;

  /// E[K].
  [[nodiscard]] virtual double mean() const = 0;

  /// Lower edge of the support.
  [[nodiscard]] virtual double min_support() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace bevr::dist
