// Random sampling from any DiscreteLoad via inversion on a cached CDF
// table. Used by the flow-level simulator (bevr::sim) to draw static
// load configurations and by tests to verify distribution identities.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "bevr/dist/discrete.h"

namespace bevr::dist {

/// Inversion sampler with a precomputed CDF table covering all but
/// `tail_eps` of the mass; draws landing in the residual tail fall back
/// to a pmf walk beyond the table.
class DiscreteSampler {
 public:
  /// Builds the CDF cache up to the (1 - tail_eps) quantile.
  explicit DiscreteSampler(const DiscreteLoad& load, double tail_eps = 1e-12);

  /// Draw one load level.
  [[nodiscard]] std::int64_t sample(std::mt19937_64& rng) const;

  /// Number of cached CDF entries (exposed for tests).
  [[nodiscard]] std::size_t table_size() const { return cdf_.size(); }

 private:
  const DiscreteLoad& load_;
  std::int64_t first_;               ///< k value of cdf_[0]
  std::vector<double> cdf_;          ///< cdf_[i] = P[K <= first_ + i]
};

}  // namespace bevr::dist
