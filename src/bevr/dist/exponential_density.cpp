#include "bevr/dist/exponential_density.h"

#include <cmath>
#include <stdexcept>

namespace bevr::dist {

ExponentialDensity::ExponentialDensity(double beta) : beta_(beta) {
  if (!(beta > 0.0) || !std::isfinite(beta)) {
    throw std::invalid_argument("ExponentialDensity: beta must be positive");
  }
}

ExponentialDensity ExponentialDensity::with_mean(double mean) {
  if (!(mean > 0.0)) {
    throw std::invalid_argument("ExponentialDensity::with_mean: mean must be > 0");
  }
  return ExponentialDensity(1.0 / mean);
}

double ExponentialDensity::density(double k) const {
  if (k < 0.0) return 0.0;
  return beta_ * std::exp(-beta_ * k);
}

double ExponentialDensity::tail_above(double k) const {
  if (k <= 0.0) return 1.0;
  return std::exp(-beta_ * k);
}

double ExponentialDensity::partial_mean_below(double k) const {
  if (k <= 0.0) return 0.0;
  // ∫_0^k xβe^{-βx} dx = (1/β)(1 - e^{-βk}(1 + βk)).
  const double bk = beta_ * k;
  return (1.0 - std::exp(-bk) * (1.0 + bk)) / beta_;
}

std::string ExponentialDensity::name() const {
  return "ExponentialDensity(beta=" + std::to_string(beta_) + ")";
}

}  // namespace bevr::dist
