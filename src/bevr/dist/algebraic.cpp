#include "bevr/dist/algebraic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "bevr/numerics/roots.h"
#include "bevr/numerics/special.h"

namespace bevr::dist {

namespace {

double mean_for(double z, double lambda) {
  // k̄ = [ζ(z-1, λ+1) - λ·ζ(z, λ+1)] / ζ(z, λ+1).
  const double za = numerics::hurwitz_zeta(z - 1.0, lambda + 1.0);
  const double zb = numerics::hurwitz_zeta(z, lambda + 1.0);
  return za / zb - lambda;
}

}  // namespace

AlgebraicLoad::AlgebraicLoad(double z, double lambda) : z_(z), lambda_(lambda) {
  if (!(z > 2.0)) {
    throw std::invalid_argument("AlgebraicLoad: z must exceed 2 (finite mean)");
  }
  if (!(lambda >= 0.0) || !std::isfinite(lambda)) {
    throw std::invalid_argument("AlgebraicLoad: lambda must be >= 0");
  }
  norm_ = numerics::hurwitz_zeta(z, lambda + 1.0);
}

AlgebraicLoad AlgebraicLoad::with_mean(double z, double mean) {
  if (!(z > 2.0)) {
    throw std::invalid_argument("AlgebraicLoad::with_mean: z must exceed 2");
  }
  const double min_mean = mean_for(z, 0.0);
  if (!(mean >= min_mean)) {
    throw std::invalid_argument(
        "AlgebraicLoad::with_mean: mean below the lambda=0 minimum");
  }
  if (mean == min_mean) return AlgebraicLoad(z, 0.0);
  // mean_for is increasing in lambda (roughly linear, slope 1/(z-2)).
  auto objective = [z, mean](double lambda) { return mean_for(z, lambda) - mean; };
  const double guess = mean * (z - 2.0);
  const auto bracket =
      numerics::expand_bracket(objective, 0.0, std::max(1.0, 2.0 * guess),
                               /*grow=*/2.0, /*max_expansions=*/80,
                               /*min_lo=*/0.0);
  if (!bracket) {
    throw std::runtime_error("AlgebraicLoad::with_mean: failed to bracket lambda");
  }
  const auto root = numerics::brent(objective, *bracket);
  return AlgebraicLoad(z, root.x);
}

double AlgebraicLoad::pmf(std::int64_t k) const {
  if (k < 1) return 0.0;
  return std::pow(lambda_ + static_cast<double>(k), -z_) / norm_;
}

double AlgebraicLoad::tail_above(std::int64_t k) const {
  if (k < 1) return 1.0;
  // Σ_{j>k} (λ+j)^{-z} = ζ(z, λ+k+1).
  return numerics::hurwitz_zeta(z_, lambda_ + static_cast<double>(k) + 1.0) /
         norm_;
}

double AlgebraicLoad::cdf(std::int64_t k) const {
  if (k < 1) return 0.0;
  // Direct head sum avoids the 1 − tail cancellation for small k.
  constexpr std::int64_t kDirectCdfTerms = 4096;
  if (k <= kDirectCdfTerms) {
    double sum = 0.0;
    for (std::int64_t j = k; j >= 1; --j) {
      sum += std::pow(lambda_ + static_cast<double>(j), -z_);
    }
    return std::min(1.0, sum / norm_);
  }
  return std::clamp(1.0 - tail_above(k), 0.0, 1.0);
}

double AlgebraicLoad::mean() const { return mean_for(z_, lambda_); }

double AlgebraicLoad::second_moment() const {
  if (z_ <= 3.0) return std::numeric_limits<double>::infinity();
  // E[K²] = [ζ(z-2, q) - 2λ·ζ(z-1, q) + λ²·ζ(z, q)] / ζ(z, q), q = λ+1.
  const double q = lambda_ + 1.0;
  const double numerator = numerics::hurwitz_zeta(z_ - 2.0, q) -
                           2.0 * lambda_ * numerics::hurwitz_zeta(z_ - 1.0, q) +
                           lambda_ * lambda_ * norm_;
  return numerator / norm_;
}

double AlgebraicLoad::partial_mean_above(std::int64_t k) const {
  if (k < 1) return mean();
  // Σ_{j>k} j(λ+j)^{-z} = ζ(z-1, λ+k+1) - λ·ζ(z, λ+k+1).
  const double q = lambda_ + static_cast<double>(k) + 1.0;
  return (numerics::hurwitz_zeta(z_ - 1.0, q) -
          lambda_ * numerics::hurwitz_zeta(z_, q)) /
         norm_;
}

double AlgebraicLoad::pmf_continuous(double k) const {
  if (k < 1.0) return 0.0;
  return std::pow(lambda_ + k, -z_) / norm_;
}

std::string AlgebraicLoad::name() const {
  return "Algebraic(z=" + std::to_string(z_) +
         ", lambda=" + std::to_string(lambda_) + ")";
}

}  // namespace bevr::dist
