#include "bevr/dist/discrete.h"

#include <algorithm>
#include <stdexcept>

namespace bevr::dist {

double DiscreteLoad::cdf(std::int64_t k) const {
  return std::clamp(1.0 - tail_above(k), 0.0, 1.0);
}

std::int64_t DiscreteLoad::truncation_point(double eps) const {
  if (!(eps > 0.0) || eps >= 1.0) {
    throw std::invalid_argument("truncation_point: eps must be in (0, 1)");
  }
  // Exponential search for an upper bound, then binary search for the
  // smallest k with tail_above(k) <= eps.
  std::int64_t lo = min_support();
  std::int64_t hi = lo + 1;
  constexpr std::int64_t kHardCap = 1LL << 46;
  while (tail_above(hi) > eps) {
    lo = hi;
    hi *= 2;
    if (hi > kHardCap) return kHardCap;  // give up: astronomically heavy tail
  }
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (tail_above(mid) > eps) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace bevr::dist
