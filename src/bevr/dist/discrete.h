// Discrete load distributions P(k) — the probability that k flows
// request service on the link (paper §3.1). All three paper families
// (Poisson, exponential, algebraic) implement this interface, as do the
// derived flow-perspective distributions used by the §5 extensions.
//
// Accuracy contract: pmf/tail_above/partial_mean_above are closed-form
// (or stably summed) so that model sums can truncate with exact tails:
//   R(C) = Σ_{k ≤ k_max} P(k)·k·π(C/k) + k_max·π(C/k_max)·tail_above(k_max).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace bevr::dist {

/// Interface for a discrete probability distribution over load levels
/// k = min_support(), min_support()+1, ...
class DiscreteLoad {
 public:
  virtual ~DiscreteLoad() = default;

  /// P[K = k]; zero below min_support().
  [[nodiscard]] virtual double pmf(std::int64_t k) const = 0;

  /// P[K > k], closed-form/stable (not 1 - Σ pmf).
  [[nodiscard]] virtual double tail_above(std::int64_t k) const = 0;

  /// P[K ≤ k]. The default complements tail_above(); distributions
  /// override it with a cancellation-free form (1 − tail loses all
  /// precision deep in the lower tail, where cdf ≪ 1).
  [[nodiscard]] virtual double cdf(std::int64_t k) const;

  /// E[K]; the paper fixes this to k̄ = 100 in all numerical work.
  [[nodiscard]] virtual double mean() const = 0;

  /// E[K²]; may be +infinity (algebraic loads with z ≤ 3).
  [[nodiscard]] virtual double second_moment() const = 0;

  /// Σ_{j > k} j·P(j); drives size-biased tails and truncated sums.
  [[nodiscard]] virtual double partial_mean_above(std::int64_t k) const = 0;

  /// Smooth real-argument extension of the pmf (e.g. Γ in place of the
  /// factorial). Model sums over very heavy tails switch from direct
  /// summation to an Euler–Maclaurin integral of this extension.
  [[nodiscard]] virtual double pmf_continuous(double k) const = 0;

  /// Smallest k with positive probability.
  [[nodiscard]] virtual std::int64_t min_support() const = 0;

  /// Smallest k with tail_above(k) ≤ eps; model sums truncate here.
  [[nodiscard]] virtual std::int64_t truncation_point(double eps) const;

  /// Human-readable identification for logs/benches.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace bevr::dist
