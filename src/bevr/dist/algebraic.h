// Algebraic (heavy-tailed) load distribution,
//   P(k) = (λ + k)^{-z} / ζ(z, λ+1),  k = 1, 2, ...   (paper §3.1)
// The shift λ tunes the mean while holding the asymptotic power law z
// fixed — exactly the two-parameter form the paper motivates. Models
// self-similar / long-range-dependent load (paper refs [1,5,9,11]).
//
// Moments: the mean requires z > 2, the second moment z > 3; the paper
// explores z → 2⁺ where reservations' advantage is largest.
#pragma once

#include "bevr/dist/discrete.h"

namespace bevr::dist {

class AlgebraicLoad final : public DiscreteLoad {
 public:
  /// z > 2 (finite mean), λ ≥ 0.
  AlgebraicLoad(double z, double lambda);

  /// Construct with power z and a target mean by solving for λ.
  /// Requires mean ≥ the λ=0 mean ζ(z-1,1... i.e. the minimum attainable.
  [[nodiscard]] static AlgebraicLoad with_mean(double z, double mean);

  [[nodiscard]] double pmf(std::int64_t k) const override;
  [[nodiscard]] double tail_above(std::int64_t k) const override;
  [[nodiscard]] double cdf(std::int64_t k) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double second_moment() const override;
  [[nodiscard]] double partial_mean_above(std::int64_t k) const override;
  [[nodiscard]] double pmf_continuous(double k) const override;
  [[nodiscard]] std::int64_t min_support() const override { return 1; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double z() const { return z_; }
  [[nodiscard]] double lambda() const { return lambda_; }

 private:
  double z_;
  double lambda_;
  double norm_;  ///< ζ(z, λ+1)
};

}  // namespace bevr::dist
