#include "bevr/dist/mixture_load.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace bevr::dist {

MixtureLoad::MixtureLoad(std::vector<LoadRegime> regimes)
    : regimes_(std::move(regimes)) {
  if (regimes_.empty()) {
    throw std::invalid_argument("MixtureLoad: needs >= 1 regime");
  }
  double weight_sum = 0.0;
  for (const auto& regime : regimes_) {
    if (!regime.load) throw std::invalid_argument("MixtureLoad: null regime");
    if (!(regime.weight > 0.0)) {
      throw std::invalid_argument("MixtureLoad: weights must be positive");
    }
    weight_sum += regime.weight;
  }
  for (auto& regime : regimes_) regime.weight /= weight_sum;
}

double MixtureLoad::pmf(std::int64_t k) const {
  double total = 0.0;
  for (const auto& regime : regimes_) {
    total += regime.weight * regime.load->pmf(k);
  }
  return total;
}

double MixtureLoad::tail_above(std::int64_t k) const {
  double total = 0.0;
  for (const auto& regime : regimes_) {
    total += regime.weight * regime.load->tail_above(k);
  }
  return total;
}

double MixtureLoad::cdf(std::int64_t k) const {
  double total = 0.0;
  for (const auto& regime : regimes_) {
    total += regime.weight * regime.load->cdf(k);
  }
  return std::min(1.0, total);
}

double MixtureLoad::mean() const {
  double total = 0.0;
  for (const auto& regime : regimes_) {
    total += regime.weight * regime.load->mean();
  }
  return total;
}

double MixtureLoad::second_moment() const {
  double total = 0.0;
  for (const auto& regime : regimes_) {
    const double m2 = regime.load->second_moment();
    if (!std::isfinite(m2)) return std::numeric_limits<double>::infinity();
    total += regime.weight * m2;
  }
  return total;
}

double MixtureLoad::partial_mean_above(std::int64_t k) const {
  double total = 0.0;
  for (const auto& regime : regimes_) {
    total += regime.weight * regime.load->partial_mean_above(k);
  }
  return total;
}

double MixtureLoad::pmf_continuous(double k) const {
  double total = 0.0;
  for (const auto& regime : regimes_) {
    total += regime.weight * regime.load->pmf_continuous(k);
  }
  return total;
}

std::int64_t MixtureLoad::min_support() const {
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  for (const auto& regime : regimes_) {
    lo = std::min(lo, regime.load->min_support());
  }
  return lo;
}

std::string MixtureLoad::name() const {
  std::string name = "Mixture[";
  for (std::size_t i = 0; i < regimes_.size(); ++i) {
    if (i > 0) name += ", ";
    name += std::to_string(regimes_[i].weight) + "x" +
            regimes_[i].load->name();
  }
  return name + "]";
}

}  // namespace bevr::dist
