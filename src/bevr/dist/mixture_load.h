// Nonstationary loads (paper §5, "nonstationary loads — where the
// probability distribution is not fixed").
//
// Diurnal or regime-switching traffic is modelled as a mixture over
// regimes: with probability wⱼ the link lives in regime j with load
// distribution Pⱼ(k). Since the paper's quantities are expectations
// over the stationary law, the mixture is itself a DiscreteLoad —
// P(k) = Σⱼ wⱼ Pⱼ(k) — and the whole model stack applies unchanged.
// The asymptotics are governed by the heaviest-tailed regime, which is
// exactly why the paper reports this extension "did not change the
// basic nature of the asymptotic results" (verified in tests).
#pragma once

#include <memory>
#include <vector>

#include "bevr/dist/discrete.h"

namespace bevr::dist {

/// One regime of a MixtureLoad.
struct LoadRegime {
  std::shared_ptr<const DiscreteLoad> load;
  double weight = 1.0;  ///< time fraction (normalised on build)
};

class MixtureLoad final : public DiscreteLoad {
 public:
  /// Requires ≥ 1 regime; weights are normalised to sum to 1.
  explicit MixtureLoad(std::vector<LoadRegime> regimes);

  [[nodiscard]] double pmf(std::int64_t k) const override;
  [[nodiscard]] double tail_above(std::int64_t k) const override;
  [[nodiscard]] double cdf(std::int64_t k) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double second_moment() const override;
  [[nodiscard]] double partial_mean_above(std::int64_t k) const override;
  [[nodiscard]] double pmf_continuous(double k) const override;
  [[nodiscard]] std::int64_t min_support() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const std::vector<LoadRegime>& regimes() const {
    return regimes_;
  }

 private:
  std::vector<LoadRegime> regimes_;
};

}  // namespace bevr::dist
