// Flow-perspective (size-biased) load distributions for the §5
// extensions.
//
// When we follow a *flow* rather than a random instant, the load level
// it observes is size-biased: Q(k) = P(k)·k / k̄ (a flow is k times more
// likely to belong to a level-k configuration). The sampling extension
// (§5.1) additionally needs the distribution of the maximum of S
// independent draws from Q: Q_S(k) = F_Q(k)^S − F_Q(k−1)^S.
#pragma once

#include <memory>

#include "bevr/dist/discrete.h"

namespace bevr::dist {

/// Q(k) = P(k)·k / k̄ over the base distribution's support.
/// The mean of Q is E[K²]/k̄ and may be +infinity for heavy tails
/// (algebraic z ≤ 3); callers in the sampling model never need it.
class SizeBiasedLoad final : public DiscreteLoad {
 public:
  /// Keeps a shared reference to the base distribution.
  explicit SizeBiasedLoad(std::shared_ptr<const DiscreteLoad> base);

  [[nodiscard]] double pmf(std::int64_t k) const override;
  [[nodiscard]] double tail_above(std::int64_t k) const override;
  [[nodiscard]] double cdf(std::int64_t k) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double second_moment() const override;
  [[nodiscard]] double partial_mean_above(std::int64_t k) const override;
  [[nodiscard]] double pmf_continuous(double k) const override;
  [[nodiscard]] std::int64_t min_support() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const DiscreteLoad& base() const { return *base_; }

 private:
  std::shared_ptr<const DiscreteLoad> base_;
  double base_mean_;
};

/// Distribution of max(K₁,…,K_S) with Kᵢ i.i.d. from `base`.
class MaxOfSLoad final : public DiscreteLoad {
 public:
  MaxOfSLoad(std::shared_ptr<const DiscreteLoad> base, int samples);

  [[nodiscard]] double pmf(std::int64_t k) const override;
  [[nodiscard]] double tail_above(std::int64_t k) const override;
  [[nodiscard]] double cdf(std::int64_t k) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double second_moment() const override;
  [[nodiscard]] double partial_mean_above(std::int64_t k) const override;
  [[nodiscard]] double pmf_continuous(double k) const override;
  [[nodiscard]] std::int64_t min_support() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int samples() const { return samples_; }

 private:
  std::shared_ptr<const DiscreteLoad> base_;
  int samples_;
};

}  // namespace bevr::dist
