// Heterogeneous flow populations (paper §5, "heterogeneous flows —
// both in size and in utility").
//
// In the mean-field version of heterogeneity the class mix is fixed:
// a fraction wᵢ of flows belongs to class i, which needs sᵢ units of
// bandwidth per unit of "standard" share and values it through πᵢ.
// Under even sharing every flow receives the same raw share b, so the
// population's expected per-flow utility is
//     π_mix(b) = Σᵢ wᵢ · πᵢ(b / sᵢ),
// i.e. heterogeneity is exactly a mixture utility — the whole
// variable-load machinery applies unchanged. The paper reports that
// this extension "did not change the basic nature of the asymptotic
// results"; tests/core/test_extensions.cpp verifies that.
//
// Caveat: mixtures of step utilities make V(k) = k·π_mix(C/k)
// multi-peaked, so unimodal_total_utility() returns false and k_max
// falls back to an exhaustive scan.
#pragma once

#include <memory>
#include <vector>

#include "bevr/utility/utility.h"

namespace bevr::utility {

/// One population class inside a MixtureUtility.
struct MixtureComponent {
  std::shared_ptr<const UtilityFunction> utility;
  double weight = 1.0;  ///< population fraction (normalised on build)
  double scale = 1.0;   ///< bandwidth demand scale sᵢ (> 0)
};

class MixtureUtility final : public UtilityFunction {
 public:
  /// Weights are normalised to sum to 1; requires ≥ 1 component.
  explicit MixtureUtility(std::vector<MixtureComponent> components);

  [[nodiscard]] double value(double bandwidth) const override;
  [[nodiscard]] double zero_below() const override { return zero_below_; }
  [[nodiscard]] bool inelastic() const override { return inelastic_; }
  [[nodiscard]] bool unimodal_total_utility() const override { return false; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const std::vector<MixtureComponent>& components() const {
    return components_;
  }

 private:
  std::vector<MixtureComponent> components_;
  double zero_below_ = 0.0;
  bool inelastic_ = false;
};

}  // namespace bevr::utility
