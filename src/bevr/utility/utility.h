// Application utility (performance) functions π(b) — the value an
// application delivers as a function of its bandwidth share b
// (paper §2). Contract: π is nondecreasing, π(0) = 0, π(∞) = 1.
//
// Families implemented (all from the paper):
//  * Elastic          π(b) = 1 − e^{−b}          (strictly concave: data apps)
//  * Rigid            Eq. (1): step at b̂          (telephony / circuit apps)
//  * AdaptiveExp      Eq. (2): 1 − exp(−b²/(κ+b)), κ = 0.62086 so that
//                     k_max(C) = C                (rate+delay adaptive A/V)
//  * PiecewiseLinear  continuum-model adaptive with floor a ∈ (0,1]
//  * AlgebraicTail    §3.3 footnote: π(b) = 1 − b^{−r} for b > 1, else 0
#pragma once

#include <memory>
#include <span>
#include <string>

namespace bevr::utility {

/// Interface for a normalised utility function.
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// π(b) ∈ [0, 1] for b ≥ 0. Throws std::invalid_argument for b < 0.
  [[nodiscard]] virtual double value(double bandwidth) const = 0;

  /// Batched evaluation: out[i] = value(bandwidth[i]) for every i.
  /// Throws std::invalid_argument if the spans differ in length or any
  /// bandwidth is negative (validated up front, before any output is
  /// written). The base implementation is a plain scalar loop; the
  /// paper's five families override it with branch-light loops over the
  /// identical formula so sweep kernels avoid one virtual call per
  /// summation term. Overrides must produce bit-identical results to
  /// value() — the kernels layer's equivalence contract depends on it.
  virtual void value_batch(std::span<const double> bandwidth,
                           std::span<double> out) const;

  /// The largest b₀ such that π(b) = 0 for all b < b₀ (0 for utilities
  /// positive everywhere). Model sums use it to cut off dead terms:
  /// a flow with share C/k < b₀ contributes nothing.
  [[nodiscard]] virtual double zero_below() const { return 0.0; }

  /// True when a neighbourhood of the origin is convex-but-not-linear,
  /// i.e. admission control can raise total utility (paper §2: such
  /// utilities are "inelastic" and have finite k_max).
  [[nodiscard]] virtual bool inelastic() const = 0;

  /// Hint: is V(k) = k·π(C/k) unimodal in k? True for every single-
  /// class utility in the paper; mixtures of step utilities return
  /// false so k_max() uses an exhaustive scan instead of ternary search.
  [[nodiscard]] virtual bool unimodal_total_utility() const { return true; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Elastic utility π(b) = 1 − e^{−b} (everywhere strictly concave, so
/// V(k) is increasing and best-effort is optimal; paper §2).
class Elastic final : public UtilityFunction {
 public:
  [[nodiscard]] double value(double bandwidth) const override;
  void value_batch(std::span<const double> bandwidth,
                   std::span<double> out) const override;
  [[nodiscard]] bool inelastic() const override { return false; }
  [[nodiscard]] std::string name() const override { return "Elastic"; }
};

/// Rigid utility, Eq. (1): π(b) = 0 for b < b̂, 1 for b ≥ b̂.
class Rigid final : public UtilityFunction {
 public:
  explicit Rigid(double bandwidth_requirement = 1.0);

  [[nodiscard]] double value(double bandwidth) const override;
  void value_batch(std::span<const double> bandwidth,
                   std::span<double> out) const override;
  [[nodiscard]] double zero_below() const override { return bhat_; }
  [[nodiscard]] bool inelastic() const override { return true; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double requirement() const { return bhat_; }

 private:
  double bhat_;
};

/// Adaptive utility, Eq. (2): π(b) = 1 − exp(−b²/(κ+b)).
/// κ defaults to 0.62086, the paper's value making k_max(C) = C
/// (so reservation results compare directly with Rigid(b̂=1)).
class AdaptiveExp final : public UtilityFunction {
 public:
  /// The paper's κ.
  static constexpr double kPaperKappa = 0.62086;

  explicit AdaptiveExp(double kappa = kPaperKappa);

  [[nodiscard]] double value(double bandwidth) const override;
  void value_batch(std::span<const double> bandwidth,
                   std::span<double> out) const override;
  [[nodiscard]] bool inelastic() const override { return true; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double kappa() const { return kappa_; }

 private:
  double kappa_;
};

/// Continuum-model adaptive utility (paper §3.2):
///   π(b) = 0 for b ≤ a; (b−a)/(1−a) for a < b < 1; 1 for b ≥ 1.
/// a = 1 degenerates to Rigid(1); a → 0 approaches elastic behaviour.
class PiecewiseLinear final : public UtilityFunction {
 public:
  explicit PiecewiseLinear(double floor);

  [[nodiscard]] double value(double bandwidth) const override;
  void value_batch(std::span<const double> bandwidth,
                   std::span<double> out) const override;
  [[nodiscard]] double zero_below() const override { return floor_; }
  [[nodiscard]] bool inelastic() const override { return floor_ > 0.0; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double floor() const { return floor_; }

 private:
  double floor_;
};

/// Algebraically-approaching utility (§3.3 footnote):
///   π(b) = 0 for b ≤ 1; 1 − b^{−r} for b > 1, r > 0.
/// Its slow approach to 1 changes the large-C behaviour of Δ(C) under
/// algebraic loads (regimes split at r = z−2 and r = z−3).
class AlgebraicTail final : public UtilityFunction {
 public:
  explicit AlgebraicTail(double r);

  [[nodiscard]] double value(double bandwidth) const override;
  void value_batch(std::span<const double> bandwidth,
                   std::span<double> out) const override;
  [[nodiscard]] double zero_below() const override { return 1.0; }
  [[nodiscard]] bool inelastic() const override { return true; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double r() const { return r_; }

 private:
  double r_;
};

}  // namespace bevr::utility
