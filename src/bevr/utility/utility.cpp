#include "bevr/utility/utility.h"

#include <cmath>
#include <stdexcept>

namespace bevr::utility {

namespace {

void check_bandwidth(double b) {
  if (!(b >= 0.0)) {
    throw std::invalid_argument("UtilityFunction: bandwidth must be >= 0");
  }
}

}  // namespace

double Elastic::value(double bandwidth) const {
  check_bandwidth(bandwidth);
  return -std::expm1(-bandwidth);
}

Rigid::Rigid(double bandwidth_requirement) : bhat_(bandwidth_requirement) {
  if (!(bhat_ > 0.0) || !std::isfinite(bhat_)) {
    throw std::invalid_argument("Rigid: requirement must be positive/finite");
  }
}

double Rigid::value(double bandwidth) const {
  check_bandwidth(bandwidth);
  return bandwidth >= bhat_ ? 1.0 : 0.0;
}

std::string Rigid::name() const {
  return "Rigid(bhat=" + std::to_string(bhat_) + ")";
}

AdaptiveExp::AdaptiveExp(double kappa) : kappa_(kappa) {
  if (!(kappa > 0.0) || !std::isfinite(kappa)) {
    throw std::invalid_argument("AdaptiveExp: kappa must be positive/finite");
  }
}

double AdaptiveExp::value(double bandwidth) const {
  check_bandwidth(bandwidth);
  // π(b) = 1 − exp(−b²/(κ+b)); ≈ b²/κ near 0, ≈ 1 − e^{−b} for large b.
  return -std::expm1(-bandwidth * bandwidth / (kappa_ + bandwidth));
}

std::string AdaptiveExp::name() const {
  return "AdaptiveExp(kappa=" + std::to_string(kappa_) + ")";
}

PiecewiseLinear::PiecewiseLinear(double floor) : floor_(floor) {
  if (!(floor >= 0.0) || !(floor <= 1.0)) {
    throw std::invalid_argument("PiecewiseLinear: floor must lie in [0, 1]");
  }
}

double PiecewiseLinear::value(double bandwidth) const {
  check_bandwidth(bandwidth);
  if (bandwidth >= 1.0) return 1.0;
  if (floor_ >= 1.0) return 0.0;  // rigid degenerate case: b < 1 -> 0
  if (bandwidth <= floor_) return 0.0;
  return (bandwidth - floor_) / (1.0 - floor_);
}

std::string PiecewiseLinear::name() const {
  return "PiecewiseLinear(a=" + std::to_string(floor_) + ")";
}

AlgebraicTail::AlgebraicTail(double r) : r_(r) {
  if (!(r > 0.0) || !std::isfinite(r)) {
    throw std::invalid_argument("AlgebraicTail: r must be positive/finite");
  }
}

double AlgebraicTail::value(double bandwidth) const {
  check_bandwidth(bandwidth);
  if (bandwidth <= 1.0) return 0.0;
  return 1.0 - std::pow(bandwidth, -r_);
}

std::string AlgebraicTail::name() const {
  return "AlgebraicTail(r=" + std::to_string(r_) + ")";
}

}  // namespace bevr::utility
