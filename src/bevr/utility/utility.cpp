#include "bevr/utility/utility.h"

#include <cmath>
#include <stdexcept>

namespace bevr::utility {

namespace {

void check_bandwidth(double b) {
  if (!(b >= 0.0)) {
    throw std::invalid_argument("UtilityFunction: bandwidth must be >= 0");
  }
}

// Shared front-end for value_batch implementations: size agreement and
// the b >= 0 domain check, done before any output slot is written so a
// throwing call leaves `out` untouched. The validation loop is kept
// separate from the compute loops so those stay branch-light.
void check_batch(std::span<const double> bandwidth, std::span<double> out) {
  if (bandwidth.size() != out.size()) {
    throw std::invalid_argument(
        "UtilityFunction::value_batch: span lengths differ");
  }
  bool ok = true;
  for (const double b : bandwidth) ok = ok && (b >= 0.0);
  if (!ok) {
    throw std::invalid_argument("UtilityFunction: bandwidth must be >= 0");
  }
}

}  // namespace

void UtilityFunction::value_batch(std::span<const double> bandwidth,
                                  std::span<double> out) const {
  check_batch(bandwidth, out);
  for (std::size_t i = 0; i < bandwidth.size(); ++i) {
    out[i] = value(bandwidth[i]);
  }
}

double Elastic::value(double bandwidth) const {
  check_bandwidth(bandwidth);
  return -std::expm1(-bandwidth);
}

void Elastic::value_batch(std::span<const double> bandwidth,
                          std::span<double> out) const {
  check_batch(bandwidth, out);
  for (std::size_t i = 0; i < bandwidth.size(); ++i) {
    out[i] = -std::expm1(-bandwidth[i]);
  }
}

Rigid::Rigid(double bandwidth_requirement) : bhat_(bandwidth_requirement) {
  if (!(bhat_ > 0.0) || !std::isfinite(bhat_)) {
    throw std::invalid_argument("Rigid: requirement must be positive/finite");
  }
}

double Rigid::value(double bandwidth) const {
  check_bandwidth(bandwidth);
  return bandwidth >= bhat_ ? 1.0 : 0.0;
}

void Rigid::value_batch(std::span<const double> bandwidth,
                        std::span<double> out) const {
  check_batch(bandwidth, out);
  const double bhat = bhat_;
  for (std::size_t i = 0; i < bandwidth.size(); ++i) {
    out[i] = bandwidth[i] >= bhat ? 1.0 : 0.0;
  }
}

std::string Rigid::name() const {
  return "Rigid(bhat=" + std::to_string(bhat_) + ")";
}

AdaptiveExp::AdaptiveExp(double kappa) : kappa_(kappa) {
  if (!(kappa > 0.0) || !std::isfinite(kappa)) {
    throw std::invalid_argument("AdaptiveExp: kappa must be positive/finite");
  }
}

double AdaptiveExp::value(double bandwidth) const {
  check_bandwidth(bandwidth);
  // π(b) = 1 − exp(−b²/(κ+b)); ≈ b²/κ near 0, ≈ 1 − e^{−b} for large b.
  return -std::expm1(-bandwidth * bandwidth / (kappa_ + bandwidth));
}

void AdaptiveExp::value_batch(std::span<const double> bandwidth,
                              std::span<double> out) const {
  check_batch(bandwidth, out);
  const double kappa = kappa_;
  for (std::size_t i = 0; i < bandwidth.size(); ++i) {
    const double b = bandwidth[i];
    out[i] = -std::expm1(-b * b / (kappa + b));
  }
}

std::string AdaptiveExp::name() const {
  return "AdaptiveExp(kappa=" + std::to_string(kappa_) + ")";
}

PiecewiseLinear::PiecewiseLinear(double floor) : floor_(floor) {
  if (!(floor >= 0.0) || !(floor <= 1.0)) {
    throw std::invalid_argument("PiecewiseLinear: floor must lie in [0, 1]");
  }
}

double PiecewiseLinear::value(double bandwidth) const {
  check_bandwidth(bandwidth);
  if (bandwidth >= 1.0) return 1.0;
  if (floor_ >= 1.0) return 0.0;  // rigid degenerate case: b < 1 -> 0
  if (bandwidth <= floor_) return 0.0;
  return (bandwidth - floor_) / (1.0 - floor_);
}

void PiecewiseLinear::value_batch(std::span<const double> bandwidth,
                                  std::span<double> out) const {
  check_batch(bandwidth, out);
  const double a = floor_;
  if (a >= 1.0) {  // rigid degenerate case: a step at b = 1
    for (std::size_t i = 0; i < bandwidth.size(); ++i) {
      out[i] = bandwidth[i] >= 1.0 ? 1.0 : 0.0;
    }
    return;
  }
  const double inv_span = 1.0 - a;
  for (std::size_t i = 0; i < bandwidth.size(); ++i) {
    const double b = bandwidth[i];
    // Branch-light clamp form of the scalar ramp. The interior value is
    // the identical expression (b − a)/(1 − a); for b ≥ 1 that ratio is
    // ≥ 1 (exactly 1 at b == 1 since the operands coincide) and for
    // b ≤ a it is ≤ 0, so min/max reproduce the scalar branches.
    const double ramp = (b - a) / inv_span;
    out[i] = ramp >= 1.0 ? 1.0 : (ramp <= 0.0 ? 0.0 : ramp);
  }
}

std::string PiecewiseLinear::name() const {
  return "PiecewiseLinear(a=" + std::to_string(floor_) + ")";
}

AlgebraicTail::AlgebraicTail(double r) : r_(r) {
  if (!(r > 0.0) || !std::isfinite(r)) {
    throw std::invalid_argument("AlgebraicTail: r must be positive/finite");
  }
}

double AlgebraicTail::value(double bandwidth) const {
  check_bandwidth(bandwidth);
  if (bandwidth <= 1.0) return 0.0;
  return 1.0 - std::pow(bandwidth, -r_);
}

void AlgebraicTail::value_batch(std::span<const double> bandwidth,
                                std::span<double> out) const {
  check_batch(bandwidth, out);
  const double r = r_;
  for (std::size_t i = 0; i < bandwidth.size(); ++i) {
    const double b = bandwidth[i];
    out[i] = b <= 1.0 ? 0.0 : 1.0 - std::pow(b, -r);
  }
}

std::string AlgebraicTail::name() const {
  return "AlgebraicTail(r=" + std::to_string(r_) + ")";
}

}  // namespace bevr::utility
