#include "bevr/utility/mixture.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace bevr::utility {

MixtureUtility::MixtureUtility(std::vector<MixtureComponent> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("MixtureUtility: needs >= 1 component");
  }
  double weight_sum = 0.0;
  for (const auto& component : components_) {
    if (!component.utility) {
      throw std::invalid_argument("MixtureUtility: null component utility");
    }
    if (!(component.weight > 0.0) || !(component.scale > 0.0)) {
      throw std::invalid_argument(
          "MixtureUtility: weights and scales must be positive");
    }
    weight_sum += component.weight;
  }
  double common_dead_zone = std::numeric_limits<double>::infinity();
  for (auto& component : components_) {
    component.weight /= weight_sum;
    inelastic_ = inelastic_ || component.utility->inelastic();
    // The mixture is zero only where EVERY class is zero: below the
    // minimum of the scaled dead zones.
    common_dead_zone = std::min(common_dead_zone,
                                component.scale *
                                    component.utility->zero_below());
  }
  zero_below_ = std::isfinite(common_dead_zone) ? common_dead_zone : 0.0;
}

double MixtureUtility::value(double bandwidth) const {
  if (!(bandwidth >= 0.0)) {
    throw std::invalid_argument("MixtureUtility: bandwidth must be >= 0");
  }
  double total = 0.0;
  for (const auto& component : components_) {
    total += component.weight *
             component.utility->value(bandwidth / component.scale);
  }
  return total;
}

std::string MixtureUtility::name() const {
  std::string name = "Mixture[";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) name += ", ";
    name += std::to_string(components_[i].weight) + "x" +
            components_[i].utility->name() + "@s=" +
            std::to_string(components_[i].scale);
  }
  return name + "]";
}

}  // namespace bevr::utility
