// Special functions used by the load distributions.
//
// * Hurwitz zeta ζ(s, q) normalises the discrete algebraic load
//   P(k) ∝ (λ+k)^{-z} and provides its mean:
//     Σ_{k≥1} (λ+k)^{-z} = ζ(z, λ+1)
//     k̄ = [ζ(z-1, λ+1) - λ ζ(z, λ+1)] / ζ(z, λ+1)
// * log-space Poisson pmf avoids under/overflow at k̄ = 100.
#pragma once

#include <cstdint>

namespace bevr::numerics {

/// ln Γ(x) without the data race: glibc's lgamma writes the global
/// `signgam`, which TSan flags once model evaluation fans out across
/// threads. Uses the reentrant lgamma_r where available.
[[nodiscard]] double lgamma_threadsafe(double x);

/// Hurwitz zeta ζ(s, q) = Σ_{k≥0} (q+k)^{-s} for s > 1, q > 0,
/// via Euler–Maclaurin. Accuracy ≈ 1e-14 relative.
[[nodiscard]] double hurwitz_zeta(double s, double q);

/// Riemann zeta ζ(s) = ζ(s, 1) for s > 1.
[[nodiscard]] double riemann_zeta(double s);

/// log of the Poisson pmf: k·ln ν − ν − ln k!  (k ≥ 0, ν > 0).
[[nodiscard]] double poisson_log_pmf(std::int64_t k, double nu);

/// Poisson pmf computed in log space.
[[nodiscard]] double poisson_pmf(std::int64_t k, double nu);

/// Regularised upper tail of the Poisson distribution, P[K > k],
/// computed by stable summation from the mode outward.
[[nodiscard]] double poisson_tail_above(std::int64_t k, double nu);

/// log(1 - exp(x)) for x < 0, numerically stable near 0 and -inf.
[[nodiscard]] double log1mexp(double x);

}  // namespace bevr::numerics
