// One-dimensional root finding.
//
// Used throughout the models: inverting B(C) to obtain the bandwidth
// gap Delta(C), solving welfare first-order conditions V'(C)=p, the
// equalising price ratio W_R(p̂)=W_B(p), the retry-extension load
// fixed point, and mean-parameterisation of the algebraic load
// distribution.
#pragma once

#include <functional>
#include <optional>

namespace bevr::numerics {

/// A bracketing interval [lo, hi] with f(lo) and f(hi) of opposite sign
/// (or one of them exactly zero).
struct Bracket {
  double lo = 0.0;
  double hi = 0.0;
  double f_lo = 0.0;
  double f_hi = 0.0;
};

/// Options controlling the root search.
struct RootOptions {
  double x_tol = 1e-12;       ///< absolute tolerance on the abscissa
  double x_rtol = 1e-12;      ///< relative tolerance on the abscissa
  double f_tol = 0.0;         ///< |f| small enough to accept immediately
  int max_iterations = 200;   ///< hard cap on iterations
};

/// Result of a root search.
struct RootResult {
  double x = 0.0;        ///< the root estimate
  double f = 0.0;        ///< residual f(x)
  int iterations = 0;    ///< iterations consumed
  bool converged = false;
};

/// Try to bracket a root of `f` starting from [lo, hi], expanding the
/// interval geometrically (factor `grow`) up to `max_expansions` times.
/// Expansion respects the optional hard bounds [min_lo, max_hi].
/// Returns nullopt if no sign change could be found.
[[nodiscard]] std::optional<Bracket> expand_bracket(
    const std::function<double(double)>& f, double lo, double hi,
    double grow = 2.0, int max_expansions = 64,
    double min_lo = -1e308, double max_hi = 1e308);

/// Brent's method on a valid bracket. Precondition: f(lo)*f(hi) <= 0;
/// throws std::invalid_argument otherwise.
[[nodiscard]] RootResult brent(const std::function<double(double)>& f,
                               const Bracket& bracket,
                               const RootOptions& options = {});

/// Convenience: evaluate endpoints, validate the sign change, run Brent.
/// Throws std::invalid_argument when [lo, hi] does not bracket a root.
[[nodiscard]] RootResult brent(const std::function<double(double)>& f,
                               double lo, double hi,
                               const RootOptions& options = {});

/// Plain bisection (robust fallback; also used in tests as an oracle).
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f,
                                double lo, double hi,
                                const RootOptions& options = {});

}  // namespace bevr::numerics
