#include "bevr/numerics/roots.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bevr::numerics {

namespace {

bool opposite_signs(double a, double b) noexcept {
  return (a <= 0.0 && b >= 0.0) || (a >= 0.0 && b <= 0.0);
}

bool within_tol(double a, double b, const RootOptions& o) noexcept {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(b - a) <= o.x_tol + o.x_rtol * scale;
}

}  // namespace

std::optional<Bracket> expand_bracket(const std::function<double(double)>& f,
                                      double lo, double hi, double grow,
                                      int max_expansions, double min_lo,
                                      double max_hi) {
  if (!(lo < hi)) throw std::invalid_argument("expand_bracket: lo must be < hi");
  if (!(grow > 1.0)) throw std::invalid_argument("expand_bracket: grow must be > 1");
  double f_lo = f(lo);
  double f_hi = f(hi);
  for (int i = 0; i <= max_expansions; ++i) {
    if (std::isfinite(f_lo) && std::isfinite(f_hi) && opposite_signs(f_lo, f_hi)) {
      return Bracket{lo, hi, f_lo, f_hi};
    }
    const double width = hi - lo;
    // Expand the endpoint whose |f| is smaller (closer to the root), or
    // whichever endpoint still has room under the hard bounds.
    const bool can_grow_lo = lo > min_lo;
    const bool can_grow_hi = hi < max_hi;
    if (!can_grow_lo && !can_grow_hi) break;
    const bool grow_lo =
        can_grow_lo && (!can_grow_hi || std::abs(f_lo) < std::abs(f_hi));
    if (grow_lo) {
      lo = std::max(min_lo, lo - (grow - 1.0) * width);
      f_lo = f(lo);
    } else {
      hi = std::min(max_hi, hi + (grow - 1.0) * width);
      f_hi = f(hi);
    }
  }
  return std::nullopt;
}

RootResult brent(const std::function<double(double)>& f, const Bracket& bracket,
                 const RootOptions& options) {
  double a = bracket.lo, b = bracket.hi;
  double fa = bracket.f_lo, fb = bracket.f_hi;
  if (!opposite_signs(fa, fb)) {
    throw std::invalid_argument("brent: interval does not bracket a root");
  }
  RootResult result;
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};

  // Keep |f(b)| <= |f(a)|: b is the best iterate.
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;   // previous iterate
  double d = b - a;        // step taken last iteration
  double e = d;            // step before that

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol =
        0.5 * (options.x_tol + options.x_rtol * std::abs(b));
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0 || std::abs(fb) <= options.f_tol) {
      return {b, fb, iter, true};
    }
    if (std::abs(e) < tol || std::abs(fa) <= std::abs(fb)) {
      d = e = m;  // bisection
    } else {
      double p, q;
      const double s = fb / fa;
      if (a == c) {
        // secant
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        // inverse quadratic interpolation
        const double qa = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qa * (qa - r) - (b - a) * (r - 1.0));
        q = (qa - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) {
        q = -q;
      } else {
        p = -p;
      }
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;
        d = p / q;  // accept interpolation
      } else {
        d = e = m;  // fall back to bisection
      }
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = e = b - a;
    }
    result.iterations = iter;
  }
  result.x = b;
  result.f = fb;
  result.converged = false;
  return result;
}

RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& options) {
  Bracket br{lo, hi, f(lo), f(hi)};
  return brent(f, br, options);
}

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootOptions& options) {
  double f_lo = f(lo);
  double f_hi = f(hi);
  if (f_lo == 0.0) return {lo, 0.0, 0, true};
  if (f_hi == 0.0) return {hi, 0.0, 0, true};
  if (!opposite_signs(f_lo, f_hi)) {
    throw std::invalid_argument("bisect: interval does not bracket a root");
  }
  RootResult result;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    const double mid = lo + 0.5 * (hi - lo);
    const double f_mid = f(mid);
    result.iterations = iter;
    if (f_mid == 0.0 || within_tol(lo, hi, options) ||
        std::abs(f_mid) <= options.f_tol) {
      return {mid, f_mid, iter, true};
    }
    if (opposite_signs(f_lo, f_mid)) {
      hi = mid;
      f_hi = f_mid;
    } else {
      lo = mid;
      f_lo = f_mid;
    }
  }
  result.x = lo + 0.5 * (hi - lo);
  result.f = f(result.x);
  result.converged = within_tol(lo, hi, options);
  return result;
}

}  // namespace bevr::numerics
