#include "bevr/numerics/quadrature.h"

#include <array>
#include <cmath>
#include <stdexcept>

namespace bevr::numerics {

namespace {

// Kronrod-15 nodes (positive half) and weights; Gauss-7 weights embed on
// the odd-indexed nodes. Values from the standard QUADPACK tables.
constexpr std::array<double, 8> kKronrodNodes = {
    0.991455371120813, 0.949107912342759, 0.864864423359769,
    0.741531185599394, 0.586087235467691, 0.405845151377397,
    0.207784955007898, 0.000000000000000};
constexpr std::array<double, 8> kKronrodWeights = {
    0.022935322010529, 0.063092092629979, 0.104790010322250,
    0.140653259715525, 0.169004726639267, 0.190350578064785,
    0.204432940075298, 0.209482141084728};
constexpr std::array<double, 4> kGaussWeights = {
    0.129484966168870, 0.279705391489277, 0.381830050505119,
    0.417959183673469};

struct Panel {
  double a, b, value, error;
};

Panel evaluate_panel(const std::function<double(double)>& f, double a,
                     double b) {
  const double center = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  double kronrod = 0.0;
  double gauss = 0.0;
  for (std::size_t i = 0; i < kKronrodNodes.size(); ++i) {
    const double node = kKronrodNodes[i];
    double fsum;
    if (node == 0.0) {
      fsum = f(center);
    } else {
      fsum = f(center - half * node) + f(center + half * node);
    }
    kronrod += kKronrodWeights[i] * fsum;
    if (i % 2 == 1) {  // odd indices carry the embedded Gauss-7 nodes
      gauss += kGaussWeights[i / 2] * fsum;
    }
  }
  kronrod *= half;
  gauss *= half;
  const double diff = std::abs(kronrod - gauss);
  // QUADPACK-style sharpened error estimate.
  const double err = diff * std::sqrt(std::min(1.0, 200.0 * diff));
  return Panel{a, b, kronrod, err};
}

void integrate_recursive(const std::function<double(double)>& f,
                         const Panel& panel, double abs_tol, double rel_tol,
                         int depth, int max_depth, QuadratureResult* out) {
  const double tol =
      std::max(abs_tol, rel_tol * std::abs(panel.value));
  if (panel.error <= tol || depth >= max_depth) {
    out->value += panel.value;
    out->error_estimate += panel.error;
    if (depth >= max_depth && panel.error > tol) out->converged = false;
    return;
  }
  const double mid = 0.5 * (panel.a + panel.b);
  const Panel left = evaluate_panel(f, panel.a, mid);
  const Panel right = evaluate_panel(f, mid, panel.b);
  out->evaluations += 30;
  integrate_recursive(f, left, 0.5 * abs_tol, rel_tol, depth + 1, max_depth, out);
  integrate_recursive(f, right, 0.5 * abs_tol, rel_tol, depth + 1, max_depth, out);
}

}  // namespace

QuadratureResult gauss_kronrod_15(const std::function<double(double)>& f,
                                  double a, double b) {
  const Panel panel = evaluate_panel(f, a, b);
  return {panel.value, panel.error, 15, true};
}

QuadratureResult integrate(const std::function<double(double)>& f, double a,
                           double b, double abs_tol, double rel_tol,
                           int max_depth) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    throw std::invalid_argument("integrate: endpoints must be finite");
  }
  if (a == b) return {0.0, 0.0, 0, true};
  const double sign = (a < b) ? 1.0 : -1.0;
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  QuadratureResult result;
  result.converged = true;
  const Panel root = evaluate_panel(f, lo, hi);
  result.evaluations = 15;
  integrate_recursive(f, root, abs_tol, rel_tol, 0, max_depth, &result);
  result.value *= sign;
  return result;
}

QuadratureResult integrate_to_infinity(const std::function<double(double)>& f,
                                       double a, double abs_tol,
                                       double rel_tol, int max_depth) {
  // k = a + t/(1-t); dk = dt/(1-t)^2. t in [0,1); clip just below 1.
  auto transformed = [&f, a](double t) {
    const double om = 1.0 - t;
    const double k = a + t / om;
    const double jac = 1.0 / (om * om);
    const double v = f(k);
    return v * jac;
  };
  constexpr double kUpper = 1.0 - 1e-14;
  return integrate(transformed, 0.0, kUpper, abs_tol, rel_tol, max_depth);
}

}  // namespace bevr::numerics
