#include "bevr/numerics/optimize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace bevr::numerics {

MaxResult golden_section_max(const std::function<double(double)>& f, double lo,
                             double hi, double x_tol, int max_iterations) {
  if (!(lo <= hi)) throw std::invalid_argument("golden_section_max: lo > hi");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  int evals = 2;
  for (int iter = 0; iter < max_iterations && (b - a) > x_tol; ++iter) {
    if (f1 >= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
    ++evals;
  }
  const double x = 0.5 * (a + b);
  return {x, f(x), evals + 1};
}

MaxResult grid_refine_max(const std::function<double(double)>& f, double lo,
                          double hi, int grid_points, double x_tol) {
  if (!(lo <= hi)) throw std::invalid_argument("grid_refine_max: lo > hi");
  if (grid_points < 3) throw std::invalid_argument("grid_refine_max: need >= 3 grid points");
  const double step = (hi - lo) / (grid_points - 1);
  double best_x = lo;
  double best_v = f(lo);
  int evals = 1;
  for (int i = 1; i < grid_points; ++i) {
    const double x = lo + step * i;
    const double v = f(x);
    ++evals;
    if (v > best_v) {
      best_v = v;
      best_x = x;
    }
  }
  const double a = std::max(lo, best_x - step);
  const double b = std::min(hi, best_x + step);
  MaxResult refined = golden_section_max(f, a, b, x_tol);
  refined.evaluations += evals;
  if (refined.value < best_v) {
    refined.x = best_x;
    refined.value = best_v;
  }
  return refined;
}

MaxResult grid_refine_max(const std::function<double(double)>& f,
                          const GridEvalFn& grid_eval, double lo, double hi,
                          int grid_points, double x_tol) {
  if (!grid_eval) return grid_refine_max(f, lo, hi, grid_points, x_tol);
  if (!(lo <= hi)) throw std::invalid_argument("grid_refine_max: lo > hi");
  if (grid_points < 3) throw std::invalid_argument("grid_refine_max: need >= 3 grid points");
  const double step = (hi - lo) / (grid_points - 1);
  std::vector<double> values(static_cast<std::size_t>(grid_points));
  grid_eval(lo, hi, grid_points, values);
  // Same scan as the scalar overload: i = 0 seeds, strict > advances.
  double best_x = lo;
  double best_v = values[0];
  for (int i = 1; i < grid_points; ++i) {
    const double v = values[static_cast<std::size_t>(i)];
    if (v > best_v) {
      best_v = v;
      best_x = lo + step * i;
    }
  }
  const double a = std::max(lo, best_x - step);
  const double b = std::min(hi, best_x + step);
  MaxResult refined = golden_section_max(f, a, b, x_tol);
  refined.evaluations += grid_points;
  if (refined.value < best_v) {
    refined.x = best_x;
    refined.value = best_v;
  }
  return refined;
}

IntMaxResult integer_argmax(const std::function<double(std::int64_t)>& f,
                            std::int64_t lo, std::int64_t hi,
                            bool assume_unimodal) {
  if (lo > hi) throw std::invalid_argument("integer_argmax: empty range");
  if (!assume_unimodal || hi - lo <= 64) {
    IntMaxResult best{lo, f(lo)};
    for (std::int64_t k = lo + 1; k <= hi; ++k) {
      const double v = f(k);
      if (v > best.value) best = {k, v};
    }
    return best;
  }
  // Ternary search until the interval is small, then scan. This handles
  // short plateaus (ties) that pure ternary search can mis-handle.
  std::int64_t a = lo, b = hi;
  while (b - a > 64) {
    const std::int64_t m1 = a + (b - a) / 3;
    const std::int64_t m2 = b - (b - a) / 3;
    if (f(m1) < f(m2)) {
      a = m1 + 1;
    } else {
      b = m2 - 1;
    }
  }
  IntMaxResult best{a, f(a)};
  for (std::int64_t k = a + 1; k <= b; ++k) {
    const double v = f(k);
    if (v > best.value) best = {k, v};
  }
  return best;
}

}  // namespace bevr::numerics
