// Real branches of the Lambert W function.
//
// The exponential-load welfare closed forms (paper §4) require the
// largest solution h of h·e^{-h} = p, which is h = -W_{-1}(-p) for
// p ∈ (0, 1/e]. We implement both real branches with Halley iteration
// from branch-appropriate initial guesses.
#pragma once

namespace bevr::numerics {

/// Principal branch W₀(x), defined for x ≥ -1/e; W₀(x) ≥ -1.
/// Throws std::domain_error for x < -1/e (beyond rounding slop).
[[nodiscard]] double lambert_w0(double x);

/// Secondary real branch W₋₁(x), defined for x ∈ [-1/e, 0); W₋₁ ≤ -1.
/// Throws std::domain_error outside that interval.
[[nodiscard]] double lambert_w_minus1(double x);

/// The largest solution h of h·e^{-h} = p for p ∈ (0, 1/e]:
/// h(p) = -W₋₁(-p). This is the best-effort welfare capacity relation
/// under exponential loads and rigid utility (paper §4).
[[nodiscard]] double largest_h_of_he_minus_h(double p);

}  // namespace bevr::numerics
