// Numerical integration.
//
// The continuum variable-load model (paper §3.2) defines
//   V_B(C) = ∫_0^∞ P(k) k π(C/k) dk
//   V_R(C) = ∫_0^{k_max} P(k) k π(C/k) dk + π(C/k_max) k_max ∫_{k_max}^∞ P(k) dk
// We evaluate these with adaptive Gauss–Kronrod quadrature; the
// closed-form expressions in core/continuum.cpp are cross-validated
// against these numeric integrals in the test suite.
#pragma once

#include <functional>

namespace bevr::numerics {

/// Result of an integration.
struct QuadratureResult {
  double value = 0.0;
  double error_estimate = 0.0;
  int evaluations = 0;
  bool converged = false;
};

/// Non-adaptive 15-point Gauss–Kronrod rule on [a, b]; the error
/// estimate compares against the embedded 7-point Gauss rule.
[[nodiscard]] QuadratureResult gauss_kronrod_15(
    const std::function<double(double)>& f, double a, double b);

/// Adaptive integration of f over the finite interval [a, b] by
/// recursive bisection of Gauss–Kronrod panels.
[[nodiscard]] QuadratureResult integrate(
    const std::function<double(double)>& f, double a, double b,
    double abs_tol = 1e-12, double rel_tol = 1e-10, int max_depth = 40);

/// Adaptive integration of f over the semi-infinite interval [a, ∞)
/// via the transform k = a + t/(1-t), t ∈ [0, 1).
[[nodiscard]] QuadratureResult integrate_to_infinity(
    const std::function<double(double)>& f, double a,
    double abs_tol = 1e-12, double rel_tol = 1e-10, int max_depth = 40);

}  // namespace bevr::numerics
