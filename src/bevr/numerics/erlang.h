// Erlang-B (loss system) formulas.
//
// The reservation architecture on a single link with unit flows is an
// M/M/m/m loss system; Erlang-B gives its exact blocking probability
// and is the classical yardstick for the admission-controlled runs of
// the flow-level simulator. The paper's static-distribution blocking
// fraction is a different (unconstrained-occupancy) estimate; both are
// exposed so the difference can be studied.
#pragma once

#include <cstdint>

namespace bevr::numerics {

/// Erlang-B blocking probability B(E, m) for offered load E (erlangs)
/// and m servers, via the standard numerically stable recursion
///   B(E, 0) = 1,  B(E, m) = E·B(E, m−1) / (m + E·B(E, m−1)).
[[nodiscard]] double erlang_b(double offered_load, std::int64_t servers);

/// Smallest m with erlang_b(E, m) ≤ target (capacity planning helper).
/// Throws std::invalid_argument unless 0 < target < 1.
[[nodiscard]] std::int64_t erlang_b_servers(double offered_load,
                                            double target_blocking);

/// Inverse of erlang_b in its load argument: the largest offered load
/// E (erlangs) with erlang_b(E, servers) ≤ target. B(E, m) is
/// continuous and strictly increasing in E for m ≥ 1, so this is the
/// root of B(E, m) = target, found by bisection over the same stable
/// recurrence; the returned bracket end satisfies
/// erlang_b(result, servers) ≤ target exactly. The admission scenarios
/// use it to place operating points ("the load a C-server link carries
/// at 1% blocking"). Throws std::invalid_argument unless servers ≥ 1
/// and 0 < target < 1.
[[nodiscard]] double erlang_b_offered_load(std::int64_t servers,
                                           double target_blocking);

}  // namespace bevr::numerics
