#include "bevr/numerics/special.h"

#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "bevr/numerics/kahan.h"

namespace bevr::numerics {

double lgamma_threadsafe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  // The reentrant variant takes the sign as an out-param instead of
  // writing the `signgam` global.
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

namespace {

// B_{2j} / (2j)! for j = 1..8 (Euler–Maclaurin correction coefficients).
constexpr std::array<double, 8> kBernoulliOverFactorial = {
    1.0 / 12.0,                      // B2/2!
    -1.0 / 720.0,                    // B4/4!
    1.0 / 30240.0,                   // B6/6!
    -1.0 / 1209600.0,                // B8/8!
    1.0 / 47900160.0,                // B10/10!
    -691.0 / 1307674368000.0,        // B12/12!
    1.0 / 74724249600.0,             // B14/14!
    -3617.0 / 10670622842880000.0,   // B16/16!
};

}  // namespace

double hurwitz_zeta(double s, double q) {
  if (!(s > 1.0)) throw std::invalid_argument("hurwitz_zeta: requires s > 1");
  if (!(q > 0.0)) throw std::invalid_argument("hurwitz_zeta: requires q > 0");

  // Direct terms k = 0..N-1, then Euler–Maclaurin tail from q+N.
  constexpr int kDirectTerms = 24;
  KahanSum sum;
  for (int k = 0; k < kDirectTerms; ++k) {
    sum.add(std::pow(q + k, -s));
  }
  const double a = q + kDirectTerms;
  sum.add(std::pow(a, 1.0 - s) / (s - 1.0));  // integral tail
  sum.add(0.5 * std::pow(a, -s));             // trapezoid correction

  // Correction terms: B_{2j}/(2j)! * rising(s, 2j-1) * a^{-s-2j+1}.
  // This is an ASYMPTOTIC series: for large s relative to a the terms
  // eventually grow, so truncate at the smallest term (optimal
  // truncation), never past it.
  double rising = s;            // rising factorial s(s+1)...(s+2j-2)
  double a_pow = std::pow(a, -s - 1.0);
  const double inv_a2 = 1.0 / (a * a);
  double previous_magnitude = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < kBernoulliOverFactorial.size(); ++j) {
    const double term = kBernoulliOverFactorial[j] * rising * a_pow;
    if (std::abs(term) >= previous_magnitude) break;  // divergence onset
    sum.add(term);
    previous_magnitude = std::abs(term);
    // advance rising factorial by two and power by a^{-2}
    const double base = s + 2.0 * static_cast<double>(j);
    rising *= (base + 1.0) * (base + 2.0);
    a_pow *= inv_a2;
  }
  return sum.value();
}

double riemann_zeta(double s) { return hurwitz_zeta(s, 1.0); }

double poisson_log_pmf(std::int64_t k, double nu) {
  if (k < 0) throw std::invalid_argument("poisson_log_pmf: k < 0");
  if (!(nu > 0.0)) throw std::invalid_argument("poisson_log_pmf: nu <= 0");
  const double kd = static_cast<double>(k);
  return kd * std::log(nu) - nu - lgamma_threadsafe(kd + 1.0);
}

double poisson_pmf(std::int64_t k, double nu) {
  return std::exp(poisson_log_pmf(k, nu));
}

double poisson_tail_above(std::int64_t k, double nu) {
  if (k < 0) return 1.0;
  // Sum the pmf upward from k+1 by the recurrence p(j+1) = p(j)·ν/(j+1);
  // stop once past the mode and the terms are negligible.
  KahanSum tail;
  std::int64_t j = k + 1;
  double term = poisson_pmf(j, nu);
  while (true) {
    tail.add(term);
    ++j;
    term *= nu / static_cast<double>(j);
    const bool past_mode = static_cast<double>(j) > nu;
    if (past_mode && (term < 1e-18 * tail.value() || term < 1e-320)) break;
    if (j - k > 100'000'000) break;  // defensive cap
  }
  return tail.value();
}

double log1mexp(double x) {
  if (!(x < 0.0)) throw std::invalid_argument("log1mexp: requires x < 0");
  // Mächler's recipe: use log(-expm1(x)) for x > -ln 2, log1p(-exp(x)) else.
  constexpr double kLn2 = 0.6931471805599453;
  return (x > -kLn2) ? std::log(-std::expm1(x)) : std::log1p(-std::exp(x));
}

}  // namespace bevr::numerics
