#include "bevr/numerics/lambert_w.h"

#include <cmath>
#include <stdexcept>

namespace bevr::numerics {

namespace {

constexpr double kInvE = 0.36787944117144233;  // 1/e
constexpr double kBranchPoint = -kInvE;

/// Halley iteration for w·e^w = x starting from w0. Converges cubically
/// for any reasonable starting guess on the correct branch.
double halley(double x, double w) {
  for (int i = 0; i < 64; ++i) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    if (f == 0.0) return w;
    const double wp1 = w + 1.0;
    // At the branch point w = -1 the derivative vanishes; the series
    // start is already as accurate as the iteration can get.
    if (std::abs(wp1) < 1e-8) return w;
    const double denom = ew * wp1 - (w + 2.0) * f / (2.0 * wp1);
    if (denom == 0.0) break;
    const double step = f / denom;
    const double next = w - step;
    if (std::abs(step) <= 1e-16 * (1.0 + std::abs(next))) return next;
    w = next;
  }
  return w;
}

/// Series about the branch point x = -1/e:
/// W ≈ -1 + p - p²/3 + 11p³/72, p = ±sqrt(2(e·x + 1)).
double branch_point_series(double x, bool principal) {
  const double q = 2.0 * (std::exp(1.0) * x + 1.0);
  const double p = (principal ? 1.0 : -1.0) * std::sqrt(std::max(0.0, q));
  return -1.0 + p * (1.0 + p * (-1.0 / 3.0 + p * (11.0 / 72.0)));
}

}  // namespace

double lambert_w0(double x) {
  if (std::isnan(x)) throw std::domain_error("lambert_w0: NaN input");
  if (x < kBranchPoint) {
    if (x > kBranchPoint - 1e-14) return -1.0;  // rounding slop at -1/e
    throw std::domain_error("lambert_w0: x < -1/e");
  }
  if (x == 0.0) return 0.0;
  double w;
  if (x < kBranchPoint + 0.04) {
    w = branch_point_series(x, /*principal=*/true);
  } else if (x < 3.0) {
    // Padé-flavoured rational start, adequate for Halley.
    w = x * (1.0 + 1.25 * x) / (1.0 + x * (2.25 + 0.75 * x));
  } else {
    const double l1 = std::log(x);
    const double l2 = std::log(l1);
    w = l1 - l2 + l2 / l1;
  }
  return halley(x, w);
}

double lambert_w_minus1(double x) {
  if (std::isnan(x)) throw std::domain_error("lambert_w_minus1: NaN input");
  if (x >= 0.0 || x < kBranchPoint) {
    if (x < kBranchPoint && x > kBranchPoint - 1e-14) return -1.0;
    throw std::domain_error("lambert_w_minus1: x must lie in [-1/e, 0)");
  }
  double w;
  if (x < kBranchPoint + 0.04) {
    w = branch_point_series(x, /*principal=*/false);
  } else {
    // For x -> 0-, W-1(x) ≈ ln(-x) - ln(-ln(-x)).
    const double l1 = std::log(-x);
    const double l2 = std::log(-l1);
    w = l1 - l2 + l2 / l1;
  }
  return halley(x, w);
}

double largest_h_of_he_minus_h(double p) {
  if (!(p > 0.0) || p > kInvE + 1e-14) {
    throw std::domain_error("largest_h_of_he_minus_h: p must be in (0, 1/e]");
  }
  if (p >= kInvE) return 1.0;
  return -lambert_w_minus1(-p);
}

}  // namespace bevr::numerics
