#include "bevr/numerics/series.h"

#include <cmath>
#include <stdexcept>

#include "bevr/numerics/kahan.h"

namespace bevr::numerics {

SeriesResult sum_until_negligible(const std::function<double(std::int64_t)>& f,
                                  std::int64_t first,
                                  const SeriesOptions& options) {
  if (options.consecutive_small < 1) {
    throw std::invalid_argument("sum_until_negligible: consecutive_small >= 1");
  }
  KahanSum sum;
  int small_run = 0;
  SeriesResult result;
  for (std::int64_t k = first; k - first < options.max_terms; ++k) {
    const double term = f(k);
    sum.add(term);
    ++result.terms;
    const double threshold =
        std::max(options.abs_tol, options.rel_tol * std::abs(sum.value()));
    if (std::abs(term) <= threshold) {
      if (++small_run >= options.consecutive_small) {
        result.value = sum.value();
        result.converged = true;
        return result;
      }
    } else {
      small_run = 0;
    }
  }
  result.value = sum.value();
  result.converged = false;
  return result;
}

double sum_range(const std::function<double(std::int64_t)>& f,
                 std::int64_t first, std::int64_t last) {
  KahanSum sum;
  for (std::int64_t k = first; k <= last; ++k) sum.add(f(k));
  return sum.value();
}

}  // namespace bevr::numerics
