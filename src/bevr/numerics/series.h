// Infinite-series summation with tail control.
//
// The discrete variable-load model is a sum over load levels k with
// probability weights that eventually decay (exponentially for the
// Poisson/exponential loads, algebraically for the heavy-tailed one).
// sum_until_negligible() accumulates terms with compensated summation
// and stops once a run of consecutive terms is relatively negligible —
// with a run length long enough to be safe for slowly decaying terms.
#pragma once

#include <cstdint>
#include <functional>

namespace bevr::numerics {

/// Result of a series summation.
struct SeriesResult {
  double value = 0.0;
  std::int64_t terms = 0;       ///< number of terms evaluated
  bool converged = false;       ///< tail criterion met before the term cap
};

/// Options for sum_until_negligible().
struct SeriesOptions {
  double rel_tol = 1e-14;           ///< term/|partial sum| threshold
  double abs_tol = 1e-300;          ///< absolute term threshold
  int consecutive_small = 16;       ///< run length required to stop
  std::int64_t max_terms = 50'000'000;  ///< hard cap
};

/// Sum f(k) for k = first, first+1, ... until `consecutive_small`
/// consecutive terms are below max(abs_tol, rel_tol*|sum|), or max_terms
/// is hit. Intended for eventually-decreasing nonnegative-ish terms.
[[nodiscard]] SeriesResult sum_until_negligible(
    const std::function<double(std::int64_t)>& f, std::int64_t first = 0,
    const SeriesOptions& options = {});

/// Sum f(k) for k in [first, last] inclusive with compensated summation.
[[nodiscard]] double sum_range(const std::function<double(std::int64_t)>& f,
                               std::int64_t first, std::int64_t last);

}  // namespace bevr::numerics
