// Compensated summation (Kahan–Neumaier).
//
// The variable-load model sums long series of probability-weighted
// utilities whose terms span many orders of magnitude (e.g. Poisson
// pmf values below 1e-300 next to O(1) terms). Naive accumulation
// loses the small terms; the Neumaier variant keeps a running error
// compensation that also handles the case where the new term is
// larger than the running sum.
#pragma once

namespace bevr::numerics {

/// Compensated accumulator. Usage:
///   KahanSum s; s.add(x); ...; double total = s.value();
class KahanSum {
 public:
  constexpr KahanSum() noexcept = default;
  constexpr explicit KahanSum(double initial) noexcept : sum_(initial) {}

  /// Resume from a previously captured (raw_sum, compensation) pair:
  /// the kernels layer stores prefix states so a summation can continue
  /// mid-series bit-identically to a scalar loop that never stopped.
  constexpr KahanSum(double raw_sum, double compensation) noexcept
      : sum_(raw_sum), comp_(compensation) {}

  /// Add a term, tracking the rounding error of the addition.
  constexpr void add(double term) noexcept {
    const double t = sum_ + term;
    // Neumaier: compensate with whichever operand lost low-order bits.
    if ((sum_ >= 0 ? sum_ : -sum_) >= (term >= 0 ? term : -term)) {
      comp_ += (sum_ - t) + term;
    } else {
      comp_ += (term - t) + sum_;
    }
    sum_ = t;
  }

  constexpr KahanSum& operator+=(double term) noexcept {
    add(term);
    return *this;
  }

  /// The compensated total.
  [[nodiscard]] constexpr double value() const noexcept { return sum_ + comp_; }

  /// The uncompensated running sum (pairs with compensation() to
  /// capture the full accumulator state for later resumption).
  [[nodiscard]] constexpr double raw_sum() const noexcept { return sum_; }

  /// The accumulated rounding-error compensation.
  [[nodiscard]] constexpr double compensation() const noexcept {
    return comp_;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace bevr::numerics
