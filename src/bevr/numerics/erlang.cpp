#include "bevr/numerics/erlang.h"

#include <stdexcept>

namespace bevr::numerics {

double erlang_b(double offered_load, std::int64_t servers) {
  if (!(offered_load >= 0.0)) {
    throw std::invalid_argument("erlang_b: offered load must be >= 0");
  }
  if (servers < 0) {
    throw std::invalid_argument("erlang_b: servers must be >= 0");
  }
  if (offered_load == 0.0) return servers == 0 ? 1.0 : 0.0;
  double blocking = 1.0;
  for (std::int64_t m = 1; m <= servers; ++m) {
    blocking = offered_load * blocking /
               (static_cast<double>(m) + offered_load * blocking);
  }
  return blocking;
}

double erlang_b_offered_load(std::int64_t servers, double target_blocking) {
  if (servers < 1) {
    throw std::invalid_argument("erlang_b_offered_load: servers must be >= 1");
  }
  if (!(target_blocking > 0.0) || !(target_blocking < 1.0)) {
    throw std::invalid_argument(
        "erlang_b_offered_load: target must lie in (0, 1)");
  }
  // Bracket the root: B(0, m) = 0 <= target; double hi until it blocks
  // harder than the target. B -> 1 as E -> inf, so this terminates.
  double lo = 0.0;
  double hi = static_cast<double>(servers) + 1.0;
  while (erlang_b(hi, servers) <= target_blocking) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e18) {
      throw std::runtime_error("erlang_b_offered_load: runaway bracket");
    }
  }
  // Bisect to machine-level width; keep the invariant B(lo) <= target
  // < B(hi) so returning lo preserves the "largest E with B <= target"
  // contract exactly.
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // interval no longer splits
    if (erlang_b(mid, servers) <= target_blocking) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::int64_t erlang_b_servers(double offered_load, double target_blocking) {
  if (!(target_blocking > 0.0) || !(target_blocking < 1.0)) {
    throw std::invalid_argument("erlang_b_servers: target must lie in (0, 1)");
  }
  if (!(offered_load >= 0.0)) {
    throw std::invalid_argument("erlang_b_servers: offered load must be >= 0");
  }
  double blocking = 1.0;
  std::int64_t m = 0;
  // The recursion is monotone decreasing in m and → 0, so this ends.
  while (blocking > target_blocking) {
    ++m;
    blocking = offered_load * blocking /
               (static_cast<double>(m) + offered_load * blocking);
    if (m > 100'000'000) {
      throw std::runtime_error("erlang_b_servers: runaway search");
    }
  }
  return m;
}

}  // namespace bevr::numerics
