// One-dimensional maximisation.
//
// The welfare model (paper §4) maximises V(C) - p*C over capacity C.
// In the discrete model V_R has kinks (k_max(C) is integer-valued) and
// V_B under rigid utility is a pure step function, so we provide both
// a golden-section search (for smooth/unimodal objectives) and a
// robust grid-scan + local-refine maximiser for kinked objectives.
// The fixed-load model needs an integer argmax of k -> k*pi(C/k).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace bevr::numerics {

/// Result of a scalar maximisation.
struct MaxResult {
  double x = 0.0;    ///< maximising argument
  double value = 0.0;///< objective value at x
  int evaluations = 0;
};

/// Golden-section search for the maximum of a unimodal `f` on [lo, hi].
[[nodiscard]] MaxResult golden_section_max(
    const std::function<double(double)>& f, double lo, double hi,
    double x_tol = 1e-10, int max_iterations = 200);

/// Robust maximiser for possibly kinked / stepped objectives on [lo, hi]:
/// scans `grid_points` equally spaced samples, then refines around the
/// best sample with golden-section search on the neighbouring bracket.
[[nodiscard]] MaxResult grid_refine_max(
    const std::function<double(double)>& f, double lo, double hi,
    int grid_points = 512, double x_tol = 1e-9);

/// Bulk evaluation of an objective over the equally spaced scan grid of
/// grid_refine_max: out[i] must receive f(lo + step·i) exactly, for
/// step = (hi − lo)/(n − 1). Callers batch the dominant cost of the
/// scan (one kernel sweep / one table fill) while the refinement stage
/// keeps probing the scalar f.
using GridEvalFn =
    std::function<void(double lo, double hi, int n, std::span<double> out)>;

/// grid_refine_max with the scan stage batched through `grid_eval`.
/// Identical scan order and comparisons as the scalar overload, so for
/// a grid_eval that honours its exact-value contract the result is
/// bit-identical — only the evaluation plumbing changes.
[[nodiscard]] MaxResult grid_refine_max(
    const std::function<double(double)>& f, const GridEvalFn& grid_eval,
    double lo, double hi, int grid_points = 512, double x_tol = 1e-9);

/// Result of an integer argmax search.
struct IntMaxResult {
  std::int64_t k = 0;
  double value = 0.0;
};

/// Argmax of f(k) over integers k in [lo, hi]. Exploits unimodality by
/// ternary search when `assume_unimodal` is true; otherwise scans.
/// For unimodal search, plateaus are handled by falling back to a local
/// scan once the interval is small.
[[nodiscard]] IntMaxResult integer_argmax(
    const std::function<double(std::int64_t)>& f, std::int64_t lo,
    std::int64_t hi, bool assume_unimodal = true);

}  // namespace bevr::numerics
