// Figure 1: "The performance curve π(b) for a rate and delay adaptive
// application" — Eq. (2) with κ = 0.62086.
//
// Prints the adaptive utility curve together with the other utility
// families for visual comparison, plus the small-/large-b asymptotes
// the paper calls out (π ≈ b²/κ near 0, π ≈ 1 − e^{−b} for large b).
#include <cstdint>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/fixed_load.h"
#include "bevr/utility/utility.h"

BEVR_BENCHMARK(fig1_utility, "Figure 1: utility families + Sec 2 V(k)") {
  using namespace bevr;
  bench::print_header(
      "Figure 1: adaptive utility pi(b) = 1 - exp(-b^2/(kappa+b))");
  const utility::AdaptiveExp adaptive;
  const utility::Rigid rigid(1.0);
  const utility::Elastic elastic;
  const utility::PiecewiseLinear piecewise(0.5);
  bench::print_columns({"b", "adaptive", "small_b_asym", "large_b_asym",
                        "rigid", "elastic", "pwl(a=.5)"});
  const std::vector<double> grid =
      bench::linear_grid(0.0, 4.0, ctx.pick(33, 5));
  for (const double b : grid) {
    const double kappa = utility::AdaptiveExp::kPaperKappa;
    bench::print_row({b, adaptive.value(b), b * b / kappa,
                      1.0 - std::exp(-b), rigid.value(b), elastic.value(b),
                      piecewise.value(b)});
  }
  bench::print_note(
      "paper: convex near b=0 (inelastic), concave beyond; pi(1) ~ 0.46");
  bench::print_note("kappa = 0.62086 calibrates k_max(C) = C (footnote 4)");

  // Sec 2's fixed-load story: V(k) = k*pi(C/k) peaks at k_max for
  // inelastic utilities; the rigid curve crashes to zero past the peak
  // while the adaptive one declines gently (why adaptive apps tolerate
  // best-effort overload) and the elastic one never peaks.
  bench::print_header("Sec 2: total utility V(k) = k*pi(C/k), C = 100");
  bench::print_columns({"k", "V_rigid", "V_adaptive", "V_elastic"});
  const utility::Elastic elastic_total;
  const std::vector<std::int64_t> occupancies = {10,  50,  90,  100, 101,
                                                 110, 150, 300, 1000};
  for (const std::int64_t k : occupancies) {
    bench::print_row({static_cast<double>(k),
                      core::total_utility(rigid, 100.0, k),
                      core::total_utility(adaptive, 100.0, k),
                      core::total_utility(elastic_total, 100.0, k)});
  }
  bench::print_note("k_max = 100 for rigid AND adaptive (the kappa "
                    "calibration); elastic V(k) increases forever -> "
                    "admission control never helps it");
  ctx.set_items(5 * grid.size() + 3 * occupancies.size());
}
