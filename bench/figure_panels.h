// Shared driver for Figures 2, 3 and 4: each figure shows, for one load
// distribution (k̄ = 100), six panels —
//   (a) utilities B(C), R(C) under rigid applications
//   (b) bandwidth gap Δ(C) under rigid applications
//   (c) equalising price ratio γ(p) under rigid applications
//   (d,e,f) the same three under adaptive applications.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bevr/bench/bench_util.h"
#include "bevr/core/variable_load.h"
#include "bevr/core/welfare.h"
#include "bevr/dist/discrete.h"
#include "bevr/utility/utility.h"

namespace bevr::bench {

struct FigureConfig {
  std::string figure_name;
  std::shared_ptr<const dist::DiscreteLoad> load;
  std::vector<double> capacities;      ///< C grid for panels a/b/d/e
  std::vector<double> prices;          ///< p grid for panels c/f
  /// Use a cheaper evaluation budget for the welfare sweeps (heavy-
  /// tailed loads drive very large optimal capacities at small p).
  bool fast_welfare = false;
};

inline core::VariableLoadModel::Options welfare_options(bool fast) {
  core::VariableLoadModel::Options options;
  if (fast) {
    options.tail_eps = 1e-10;
    options.direct_budget = 16'384;
  }
  return options;
}

inline void run_architecture_panels(
    const FigureConfig& config,
    const std::shared_ptr<const utility::UtilityFunction>& pi,
    const std::string& label) {
  const core::VariableLoadModel model(config.load, pi);

  print_header(config.figure_name + " (" + label + "): utilities B(C), R(C)");
  print_columns({"C", "B(C)", "R(C)", "delta(C)"});
  for (const double c : config.capacities) {
    print_row({c, model.best_effort(c), model.reservation(c),
               model.performance_gap(c)});
  }

  print_header(config.figure_name + " (" + label + "): bandwidth gap Delta(C)");
  print_columns({"C", "Delta(C)", "(C+D)/C"});
  for (const double c : config.capacities) {
    const double gap = model.bandwidth_gap(c);
    print_row({c, gap, (c + gap) / c});
  }

  print_header(config.figure_name + " (" + label +
               "): equalising price ratio gamma(p)");
  const auto welfare_model = std::make_shared<core::VariableLoadModel>(
      config.load, pi, welfare_options(config.fast_welfare));
  const core::WelfareAnalysis analysis(
      [welfare_model](double c) { return welfare_model->total_best_effort(c); },
      [welfare_model](double c) { return welfare_model->total_reservation(c); },
      welfare_model->mean_load());
  print_columns({"p", "C_B(p)", "C_R(p)", "W_B(p)", "W_R(p)", "gamma(p)"});
  for (const double p : config.prices) {
    const auto be = analysis.best_effort(p);
    const auto rs = analysis.reservation(p);
    const double gamma = analysis.price_ratio(p);
    print_row({p, be.capacity, rs.capacity, be.welfare, rs.welfare, gamma});
  }
}

inline void run_figure(const FigureConfig& config) {
  run_architecture_panels(
      config, std::make_shared<utility::Rigid>(1.0), "rigid");
  run_architecture_panels(
      config, std::make_shared<utility::AdaptiveExp>(), "adaptive");
}

/// Model evaluations one run_figure() performs (for Context::set_items):
/// both architectures evaluate 4 values per capacity and a welfare
/// analysis per price.
inline std::uint64_t figure_items(const FigureConfig& config) {
  return 2 * (4 * config.capacities.size() + config.prices.size());
}

}  // namespace bevr::bench
