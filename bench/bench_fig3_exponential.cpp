// Figure 3: exponential load distribution (k̄ = 100).
//
// Paper shape targets: rigid delta(2k̄) ≈ .27, delta(4k̄) ≈ .07 and a
// monotonically increasing (logarithmic) Delta(C); adaptive gaps are
// ~10x smaller with Delta peaking ≈ 9 near C ≈ 0.4·k̄ then declining;
// gamma(p) → 1 as p → 0 for both.
#include "figure_panels.h"

#include "bevr/bench/registry.h"
#include "bevr/dist/exponential.h"

BEVR_BENCHMARK(fig3_exponential,
               "Figure 3 panels: exponential load, kbar=100") {
  using namespace bevr;
  bench::FigureConfig config;
  config.figure_name = "Figure 3 [Exponential, kbar=100]";
  config.load = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  config.capacities = bench::linear_grid(10.0, 800.0, ctx.pick(40, 8));
  config.prices = bench::log_grid(1e-3, 0.4, ctx.pick(9, 3));
  ctx.set_items(bench::figure_items(config));
  bench::run_figure(config);
}
