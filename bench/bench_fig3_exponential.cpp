// Figure 3: exponential load distribution (k̄ = 100).
//
// Paper shape targets: rigid delta(2k̄) ≈ .27, delta(4k̄) ≈ .07 and a
// monotonically increasing (logarithmic) Delta(C); adaptive gaps are
// ~10x smaller with Delta peaking ≈ 9 near C ≈ 0.4·k̄ then declining;
// gamma(p) → 1 as p → 0 for both.
#include "figure_panels.h"

#include "bevr/dist/exponential.h"

int main() {
  using namespace bevr;
  bench::FigureConfig config;
  config.figure_name = "Figure 3 [Exponential, kbar=100]";
  config.load = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  config.capacities = bench::linear_grid(10.0, 800.0, 40);
  config.prices = bench::log_grid(1e-3, 0.4, 9);
  bench::run_figure(config);
  return 0;
}
