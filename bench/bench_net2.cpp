// bench_net2: the multi-link network layer under load.
//
// Three suites:
//  * net2_path_admission — hot-path microbench of the per-link ledger:
//    atomic all-or-nothing path grabs cycled through both admission
//    currencies (bandwidth with trunk-reservation headroom, counted
//    k_max slots) on a full mesh; asserts the conservation laws on the
//    traffic just pushed (every grab released, the ledger drains to
//    zero, the invariant audit stays clean).
//  * net2_dar_replay — end-to-end engine replay: one synthetic mesh
//    trace evaluated under all three network policies; reports the
//    policy comparison and asserts its contracts (best effort never
//    blocks, offered splits exactly into admitted + blocked, trunk
//    reservation never oversubscribes a link, and the whole pipeline
//    is bit-deterministic run over run).
//  * net2_fixed_point — the Erlang/GHK mean-field evaluator swept to
//    C = 10⁵ circuits per link (the "millions of flows" path);
//    asserts convergence everywhere and that trunk reservation lowers
//    the loss probability under overload.
#include <cstdint>
#include <memory>
#include <vector>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/net2/engine.h"
#include "bevr/net2/fixed_point.h"
#include "bevr/net2/ledger.h"
#include "bevr/net2/policy.h"
#include "bevr/net2/topology.h"
#include "bevr/net2/trace.h"
#include "bevr/numerics/erlang.h"
#include "bevr/sim/rng.h"
#include "bevr/utility/utility.h"

namespace {

using namespace bevr;

}  // namespace

BEVR_BENCHMARK(net2_path_admission,
               "per-link ledger atomic path admission hot path") {
  const net2::Topology topology = net2::build_topology(
      {net2::TopologyKind::kFullMesh, 8, 16.0, {}});
  net2::LinkLedger ledger(topology);

  // Two-hop alternate paths through every intermediate of pair (0, 1):
  // the DAR overflow shape, where rollback actually triggers.
  std::vector<std::vector<net2::LinkId>> paths;
  for (const net2::NodeId via : topology.two_hop_intermediates(0, 1)) {
    paths.push_back({*topology.find_link(0, via),
                     *topology.find_link(via, 1)});
  }
  const std::vector<std::int64_t> limits(topology.link_count(), 12);

  const int cycles = ctx.pick(200'000, 5'000);
  std::uint64_t bandwidth_admitted = 0;
  std::uint64_t counted_admitted = 0;
  std::uint64_t refused = 0;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    const auto& path = paths[static_cast<std::size_t>(cycle) % paths.size()];
    if (cycle % 2 == 0) {
      // Trunk-reservation currency: grab one circuit, keep 2 free.
      if (ledger.try_admit_bandwidth(path, 1.0, 2.0)) {
        ++bandwidth_admitted;
        ledger.release_bandwidth(path, 1.0);
      } else {
        ++refused;
      }
    } else {
      // Reservation currency: one of k_max = 12 slots per link.
      if (ledger.try_admit_counted(path, limits)) {
        ++counted_admitted;
        ledger.release_counted(path);
      } else {
        ++refused;
      }
    }
  }
  ctx.set_items(static_cast<std::uint64_t>(cycles));

  bench::print_columns({"cycles", "paths", "bw_admits", "cnt_admits",
                        "refused"});
  bench::print_row({static_cast<double>(cycles),
                    static_cast<double>(paths.size()),
                    static_cast<double>(bandwidth_admitted),
                    static_cast<double>(counted_admitted),
                    static_cast<double>(refused)});

  // Conservation contracts on the traffic just pushed.
  if (bandwidth_admitted + counted_admitted + refused !=
      static_cast<std::uint64_t>(cycles)) {
    ctx.fail("every admission attempt must be admitted or refused");
  }
  if (refused != 0) {
    ctx.fail("an empty ledger with headroom 2 on capacity 16 must admit");
  }
  for (net2::LinkId id = 0;
       id < static_cast<net2::LinkId>(ledger.link_count()); ++id) {
    if (ledger.used(id) != 0.0 || ledger.count(id) != 0) {
      ctx.fail("ledger must drain to zero after matched releases");
    }
  }
  ledger.audit();  // throws (⇒ bench failure) on any invariant break
}

BEVR_BENCHMARK(net2_dar_replay,
               "one mesh trace replayed under all three network policies") {
  const net2::Topology topology = net2::build_topology(
      {net2::TopologyKind::kFullMesh, 6, 10.0, {}});
  net2::NetTraceSpec spec;
  spec.pair_arrival_rate = 11.0;  // past the knee: overflow is exercised
  spec.horizon = ctx.pick(200.0, 20.0);
  const net2::NetTrace trace =
      net2::generate_net_trace(topology, spec, sim::Rng(42));

  const utility::Rigid pi(1.0);
  net2::NetEngineConfig engine;
  engine.warmup = spec.horizon / 10.0;
  engine.flush_obs = false;  // microbench: keep the registry quiet

  const auto replay = [&](net2::NetPolicyKind kind, double trunk_reserve) {
    net2::NetPolicyConfig config;
    config.pi = std::make_shared<utility::Rigid>(1.0);
    config.trunk_reserve = trunk_reserve;
    const auto policy = net2::make_net_policy(kind, topology, config);
    return net2::run_network(trace, *policy, pi, engine);
  };

  const auto best_effort = replay(net2::NetPolicyKind::kBestEffort, 0.0);
  const auto reserved = replay(net2::NetPolicyKind::kDirectReservation, 0.0);
  const auto dar = replay(net2::NetPolicyKind::kDar, 2.0);
  ctx.set_items(3 * static_cast<std::uint64_t>(trace.requests.size()));

  bench::print_columns({"calls", "be_util", "res_util", "res_block",
                        "dar_block", "alt_routed"});
  bench::print_row({static_cast<double>(trace.requests.size()),
                    best_effort.mean_utility, reserved.mean_utility,
                    reserved.blocking_probability, dar.blocking_probability,
                    static_cast<double>(dar.alternate_routed)});

  // Comparison contracts on the replay just timed.
  if (best_effort.blocked != 0) {
    ctx.fail("best effort must never block");
  }
  for (const auto* report : {&best_effort, &reserved, &dar}) {
    if (report->admitted + report->blocked != report->offered) {
      ctx.fail("offered must split exactly into admitted + blocked");
    }
  }
  // Unit-rate circuits on 10-circuit links: no link may ever hold more
  // flows than its capacity under either reserving policy.
  if (reserved.peak_link_count > 10 || dar.peak_link_count > 10) {
    ctx.fail("a reserving policy oversubscribed a link");
  }
  if (dar.alternate_routed == 0) {
    ctx.fail("overload replay must exercise the DAR overflow path");
  }
  // Same trace, same policy, same engine ⇒ bit-identical report.
  const auto again = replay(net2::NetPolicyKind::kDar, 2.0);
  if (again.admitted != dar.admitted ||
      again.mean_utility != dar.mean_utility ||
      again.alternate_routed != dar.alternate_routed) {
    ctx.fail("replay is not deterministic across identical runs");
  }
}

BEVR_BENCHMARK(net2_fixed_point,
               "Erlang/GHK mean-field evaluator swept to 100k circuits") {
  // Each point dimensions its load for ~1% single-link blocking, then
  // overloads by 10% — the regime where trunk reservation matters.
  const std::vector<std::int64_t> capacities =
      ctx.pick(std::vector<std::int64_t>{100, 1'000, 10'000, 100'000},
               std::vector<std::int64_t>{100, 1'000});

  std::uint64_t total_iterations = 0;
  bench::print_columns({"capacity", "pair_load", "r0_block", "r2_block",
                        "iters"});
  for (const std::int64_t capacity : capacities) {
    net2::MeanFieldSpec spec;
    spec.capacity = capacity;
    spec.pair_load =
        1.1 * numerics::erlang_b_offered_load(capacity, 0.01);
    // 1e-12 sits below the log-space summation noise floor at large C;
    // 1e-9 is converged for every figure the layer reports.
    spec.tolerance = 1e-9;

    spec.trunk_reserve = 0;
    const auto r0 = net2::evaluate_mean_field(spec);
    spec.trunk_reserve = 2;
    const auto r2 = net2::evaluate_mean_field(spec);
    total_iterations +=
        static_cast<std::uint64_t>(r0.iterations + r2.iterations);

    bench::print_row({static_cast<double>(capacity), spec.pair_load,
                      r0.blocking, r2.blocking,
                      static_cast<double>(r0.iterations + r2.iterations)});

    if (!r0.converged || !r2.converged) {
      ctx.fail("fixed point failed to converge");
    }
    if (!(r0.blocking > 0.0 && r0.blocking < 1.0) ||
        !(r2.blocking > 0.0 && r2.blocking < 1.0)) {
      ctx.fail("loss probability left (0, 1)");
    }
    if (r2.blocking >= r0.blocking) {
      ctx.fail("trunk reservation must lower loss under overload");
    }
    if (r2.overflow_load >= r0.overflow_load) {
      ctx.fail("trunk reservation must thin the overflow load");
    }
  }
  // O(C) per iteration: items ≈ occupancy-distribution evaluations.
  ctx.set_items(total_iterations);
}
