// bench_service: the concurrent evaluation service under load.
//
// Two suites:
//  * service_closed_loop — N closed-loop clients over a mixed-scenario
//    workset; reports throughput and client-observed latency
//    percentiles, and asserts the service contract on the traffic it
//    just served: every request resolved kOk, and every response is
//    bit-identical to direct evaluation through the runner's memoized
//    model (the service changes scheduling, never values).
//  * service_overload — open-loop arrivals against a deliberately tiny
//    server (1 worker, short queue, tight deadlines); asserts the
//    shedding contract: every request resolves with one of the three
//    terminal statuses and admission control actually engages.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/runner/memoized_model.h"
#include "bevr/runner/runner.h"
#include "bevr/service/client.h"
#include "bevr/service/loadgen.h"
#include "bevr/service/server.h"

namespace {

using namespace bevr;

std::vector<service::Query> mixed_workset(int per_scenario) {
  std::vector<service::Query> queries;
  for (const char* scenario :
       {"fig2_adaptive", "fig2_rigid", "fig3_adaptive", "fig3_rigid"}) {
    for (int i = 0; i < per_scenario; ++i) {
      queries.push_back(
          {.scenario = scenario, .capacity = 40.0 + 15.0 * i});
    }
  }
  return queries;
}

}  // namespace

BEVR_BENCHMARK(service_closed_loop,
               "closed-loop clients against the evaluation service") {
  service::Server::Options options;
  options.workers = 4;
  auto cache = std::make_shared<runner::MemoCache>();
  options.cache = cache;
  service::Server server(options);

  service::LoadGenOptions load;
  load.queries = mixed_workset(ctx.pick(12, 4));
  load.threads = static_cast<unsigned>(ctx.pick(8, 4));
  load.requests_per_thread =
      static_cast<std::uint64_t>(ctx.pick(400, 40));
  const service::LoadGenReport report = service::run_closed_loop(server, load);

  bench::print_columns({"ok", "coalesced", "rps", "p50_us", "p95_us",
                        "p99_us"});
  bench::print_row({static_cast<double>(report.ok),
                    static_cast<double>(report.coalesced),
                    report.throughput_rps, report.p50_us, report.p95_us,
                    report.p99_us});
  ctx.set_items(report.total());

  if (report.total() !=
      static_cast<std::uint64_t>(load.threads) * load.requests_per_thread) {
    ctx.fail("request accounting lost responses");
  }
  if (report.ok != report.total()) {
    ctx.fail("closed loop with no deadlines must resolve every request kOk");
  }

  // Value contract on the very traffic just served: re-ask the service
  // for each workset query and compare bitwise against the runner's
  // memoized model built from the same shared cache.
  service::Client client(server);
  const auto& registry = runner::ScenarioRegistry::builtin();
  for (const service::Query& query : load.queries) {
    const service::Response response = client.evaluate(query);
    const auto direct = runner::make_memoized_model(
        *registry.find(query.scenario), cache, /*use_kernels=*/true);
    if (response.best_effort != direct->best_effort(query.capacity) ||
        response.reservation != direct->reservation(query.capacity) ||
        response.performance_gap !=
            direct->performance_gap(query.capacity) ||
        response.total_best_effort !=
            direct->total_best_effort(query.capacity) ||
        response.total_reservation !=
            direct->total_reservation(query.capacity)) {
      ctx.fail(query.scenario + ": service response diverges from direct "
                                "evaluation at C=" +
               std::to_string(query.capacity));
      break;
    }
  }
}

BEVR_BENCHMARK(service_overload,
               "open-loop overload: admission control and deadlines shed") {
  // Timed phase: live open-loop arrivals against a deliberately tiny
  // server. The *status split* here is machine-speed dependent (a fast
  // box with a warm memo cache can drain the queue faster than 20k
  // req/s fills it), so the only hard contract on this phase is
  // lossless accounting; the split is printed, not asserted.
  service::Server::Options tiny;
  tiny.workers = 1;
  tiny.queue_capacity = 8;
  service::Server server(tiny);

  service::LoadGenOptions load;
  load.queries = mixed_workset(ctx.pick(16, 8));
  load.threads = 4;
  load.total_requests = static_cast<std::uint64_t>(ctx.pick(4096, 512));
  load.rate_per_sec = ctx.pick(60000.0, 20000.0);
  load.deadline = std::chrono::milliseconds(2);
  const service::LoadGenReport report = service::run_open_loop(server, load);

  bench::print_columns({"ok", "overloaded", "expired", "rps", "p99_us"});
  bench::print_row({static_cast<double>(report.ok),
                    static_cast<double>(report.overloaded),
                    static_cast<double>(report.deadline_exceeded),
                    report.throughput_rps, report.p99_us});
  ctx.set_items(report.total());

  if (report.total() != load.total_requests) {
    ctx.fail("overload run lost responses: every request must resolve");
  }

  // Contract phase, deterministic by construction: submit the same
  // population against a *paused* tiny server so the queue must fill
  // (capacity 8 << population) before any worker can drain it, then
  // resume and drain. No timing involved: queued/coalesced requests
  // resolve kOk, the overflow resolves kOverloaded, and an
  // already-expired deadline resolves kDeadlineExceeded at submit.
  service::Server::Options gated = tiny;
  gated.paused = true;
  service::Server gate(gated);

  auto expired = gate.submit(load.queries.front(),
                             service::Clock::now() - std::chrono::seconds(1));

  std::vector<std::future<service::Response>> futures;
  futures.reserve(load.total_requests);
  for (std::uint64_t i = 0; i < load.total_requests; ++i) {
    futures.push_back(
        gate.submit(load.queries[static_cast<std::size_t>(i) %
                                 load.queries.size()]));
  }
  gate.resume();

  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  for (auto& future : futures) {
    const service::Response response = future.get();
    ok += response.status == service::StatusCode::kOk ? 1u : 0u;
    overloaded += response.status == service::StatusCode::kOverloaded ? 1u : 0u;
  }
  if (expired.get().status != service::StatusCode::kDeadlineExceeded) {
    ctx.fail("expired-at-submit deadline must shed without queueing");
  }
  if (ok + overloaded != load.total_requests) {
    ctx.fail("paused-prefill run lost responses: every request must resolve");
  }
  if (overloaded == 0) {
    ctx.fail("bounded queue admitted an entire population 64x its size");
  }
  if (ok == 0) {
    ctx.fail("overload run served nothing: shedding must not starve");
  }
}
