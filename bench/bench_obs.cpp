// bench_obs: the cost of looking.
//
// Measures the obs layer's hot paths with hand-rolled ns/op loops —
//  * counter increment and histogram observe, enabled and disabled;
//  * trace span enter/exit, enabled and disabled;
//  * a no-op baseline loop for the noise floor —
// then times a welfare sweep end to end with observability fully on
// vs fully off. Two contracts are asserted (nonzero exit on failure,
// so ctest catches a regression):
//  1. the disabled path is within noise of the no-op baseline;
//  2. full instrumentation costs < 25% on the sweep (target < 5%; the
//     loose bound keeps loaded CI machines from flaking).
// Results land in BENCH_obs.json (CWD) to start the perf trajectory.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bevr/obs/metrics.h"
#include "bevr/obs/trace.h"
#include "bevr/runner/runner.h"

namespace {

using namespace bevr;
using Clock = std::chrono::steady_clock;

/// Keep `value` alive past the optimizer without a memory round-trip.
template <typename T>
inline void keep(T& value) {
  __asm__ __volatile__("" : "+r"(value));
}

constexpr std::uint64_t kOps = 4'000'000;

/// ns per op of `body(i)` over kOps iterations, best of 3 repeats.
template <typename Body>
double measure_ns(Body&& body) {
  double best = 1e30;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) body(i);
    const double elapsed =
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count();
    best = std::min(best, elapsed / static_cast<double>(kOps));
  }
  return best;
}

runner::ScenarioSpec welfare_scenario() {
  runner::ScenarioSpec spec;
  spec.name = "bench_obs_welfare";
  spec.model = runner::ModelKind::kWelfare;
  spec.load = runner::LoadFamily::kPoisson;
  spec.util = runner::UtilityFamily::kRigid;
  spec.util_param = 1.0;
  spec.grid = runner::GridSpec{0.01, 0.4, 9, true};
  return spec;
}

/// One full welfare sweep with a fresh cache; wall seconds, best of 3.
double sweep_seconds() {
  const runner::ScenarioSpec spec = welfare_scenario();
  double best = 1e30;
  for (int repeat = 0; repeat < 3; ++repeat) {
    runner::VectorSink sink;
    runner::RunOptions options;
    options.threads = 2;
    const auto start = Clock::now();
    (void)runner::run_scenario(spec, options, sink);
    best = std::min(
        best, std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best;
}

struct Result {
  std::string name;
  double ns_per_op;
};

}  // namespace

int main() {
  bench::print_header("bench_obs: instrumentation overhead");
  std::vector<Result> results;
  int failures = 0;

  obs::MetricsRegistry registry;
  const obs::Counter counter = registry.counter("bench/counter");
  const obs::Histogram histogram = registry.histogram(
      "bench/hist", obs::HistogramSpec::exponential(1.0, 2.0, 16));
  obs::TraceCollector collector;

  // Noise floor: the same loop doing only induction-variable work.
  const double baseline = measure_ns([](std::uint64_t i) { keep(i); });
  results.push_back({"noop_baseline", baseline});

  registry.set_enabled(true);
  results.push_back({"counter_add_enabled",
                     measure_ns([&](std::uint64_t i) {
                       counter.add(1);
                       keep(i);
                     })});
  results.push_back({"histogram_observe_enabled",
                     measure_ns([&](std::uint64_t i) {
                       histogram.observe(static_cast<double>(i & 1023));
                       keep(i);
                     })});
  registry.set_enabled(false);
  const double counter_disabled = measure_ns([&](std::uint64_t i) {
    counter.add(1);
    keep(i);
  });
  results.push_back({"counter_add_disabled", counter_disabled});
  const double observe_disabled = measure_ns([&](std::uint64_t i) {
    histogram.observe(static_cast<double>(i & 1023));
    keep(i);
  });
  results.push_back({"histogram_observe_disabled", observe_disabled});

  collector.set_enabled(true);
  results.push_back({"trace_span_enabled",
                     measure_ns([&](std::uint64_t i) {
                       obs::TraceSpan span("bench/span", collector);
                       keep(i);
                     })});
  collector.set_enabled(false);
  const double span_disabled = measure_ns([&](std::uint64_t i) {
    obs::TraceSpan span("bench/span", collector);
    keep(i);
  });
  results.push_back({"trace_span_disabled", span_disabled});

  bench::print_columns({"metric", "ns_per_op"});
  for (const Result& result : results) {
    std::printf("%30s %10.2f\n", result.name.c_str(), result.ns_per_op);
  }

  // Contract 1: disabled instrumentation is noise. A relaxed bool load
  // plus an untaken branch should vanish next to the loop itself; allow
  // a couple of nanoseconds of jitter before calling it a regression.
  const double slack_ns = 2.0 + baseline;
  for (const auto& [name, ns] :
       {std::pair<const char*, double>{"counter_add_disabled",
                                       counter_disabled},
        {"histogram_observe_disabled", observe_disabled},
        {"trace_span_disabled", span_disabled}}) {
    if (ns > slack_ns) {
      std::printf("FAIL: %s = %.2f ns/op exceeds noise bound %.2f ns/op\n",
                  name, ns, slack_ns);
      ++failures;
    }
  }
  if (failures == 0) {
    bench::print_note("disabled paths within noise of the no-op baseline");
  }

  // Contract 2: full instrumentation on a real sweep. Metrics are on by
  // default; tracing is the opt-in extra — measure with both.
  obs::MetricsRegistry::global().set_enabled(false);
  obs::TraceCollector::global().set_enabled(false);
  const double off_seconds = sweep_seconds();
  obs::MetricsRegistry::global().set_enabled(true);
  obs::TraceCollector::global().set_enabled(true);
  const double on_seconds = sweep_seconds();
  obs::TraceCollector::global().set_enabled(false);
  const double ratio = off_seconds > 0.0 ? on_seconds / off_seconds : 1.0;
  std::printf("\nwelfare sweep: obs off %.4fs, obs on %.4fs, ratio %.3f "
              "(target < 1.05, bound < 1.25)\n",
              off_seconds, on_seconds, ratio);
  results.push_back({"welfare_sweep_off_s", off_seconds * 1e9});
  results.push_back({"welfare_sweep_on_s", on_seconds * 1e9});
  if (ratio >= 1.25) {
    std::printf("FAIL: instrumented sweep ratio %.3f >= 1.25\n", ratio);
    ++failures;
  }

  // Start of the perf trajectory: one JSON point per hot path.
  std::ofstream json("BENCH_obs.json");
  json << "{\"bench\":\"obs\",\"git\":\"" << runner::git_describe()
       << "\",\"git_time\":\"" << runner::git_commit_time()
       << "\",\"sweep_ratio\":" << ratio << ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i != 0) json << ",";
    json << "{\"name\":\"" << results[i].name
         << "\",\"ns_per_op\":" << results[i].ns_per_op << "}";
  }
  json << "]}\n";
  bench::print_note("wrote BENCH_obs.json");

  return failures == 0 ? 0 : 1;
}
