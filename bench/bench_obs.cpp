// bench_obs: the cost of looking.
//
// Measures the obs layer's hot paths with hand-rolled ns/op loops —
//  * counter increment and histogram observe, enabled and disabled;
//  * trace span enter/exit, enabled and disabled;
//  * flight-recorder record (always on — there is no disable switch),
//    rolling-window observe and SLO record;
//  * a no-op baseline loop for the noise floor —
// then times a welfare sweep end to end with observability fully on
// vs fully off. Three contracts are asserted (nonzero exit on
// failure, so ctest and the CI gate catch a regression):
//  1. the disabled path is within noise of the no-op baseline;
//  2. the always-on paths (flight record, window observe, SLO record)
//     stay under a generous absolute ns/op ceiling;
//  3. full instrumentation costs < 5% on the sweep in full mode (the
//     committed baseline measures ~1%); --smoke loosens the bound to
//     25% so loaded CI machines running tiny workloads do not flake.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/obs/flight_recorder.h"
#include "bevr/obs/metrics.h"
#include "bevr/obs/slo.h"
#include "bevr/obs/trace.h"
#include "bevr/obs/window.h"
#include "bevr/runner/runner.h"

namespace {

using namespace bevr;
using Clock = std::chrono::steady_clock;

/// Keep `value` alive past the optimizer without a memory round-trip.
template <typename T>
inline void keep(T& value) {
  __asm__ __volatile__("" : "+r"(value));
}

/// ns per op of `body(i)` over `ops` iterations, best of `repeats`.
template <typename Body>
double measure_ns(std::uint64_t ops, int repeats, Body&& body) {
  double best = 1e30;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) body(i);
    const double elapsed =
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count();
    best = std::min(best, elapsed / static_cast<double>(ops));
  }
  return best;
}

runner::ScenarioSpec welfare_scenario() {
  runner::ScenarioSpec spec;
  spec.name = "bench_obs_welfare";
  spec.model = runner::ModelKind::kWelfare;
  spec.load = runner::LoadFamily::kPoisson;
  spec.util = runner::UtilityFamily::kRigid;
  spec.util_param = 1.0;
  spec.grid = runner::GridSpec{0.01, 0.4, 9, true};
  return spec;
}

/// One full welfare sweep with a fresh cache; wall seconds, best of
/// `repeats`.
double sweep_seconds(int repeats) {
  const runner::ScenarioSpec spec = welfare_scenario();
  double best = 1e30;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    runner::VectorSink sink;
    runner::RunOptions options;
    options.threads = 2;
    const auto start = Clock::now();
    (void)runner::run_scenario(spec, options, sink);
    best = std::min(
        best, std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best;
}

struct Result {
  std::string name;
  double ns_per_op;
};

}  // namespace

BEVR_BENCHMARK(obs, "obs hot-path ns/op + sweep overhead contracts") {
  bench::print_header("bench_obs: instrumentation overhead");
  std::vector<Result> results;

  const std::uint64_t ops = ctx.pick(std::uint64_t{4'000'000},
                                     std::uint64_t{200'000});
  const int repeats = ctx.pick(3, 1);

  obs::MetricsRegistry registry;
  const obs::Counter counter = registry.counter("bench/counter");
  const obs::Histogram histogram = registry.histogram(
      "bench/hist", obs::HistogramSpec::exponential(1.0, 2.0, 16));
  obs::TraceCollector collector;

  // Noise floor: the same loop doing only induction-variable work.
  const double baseline =
      measure_ns(ops, repeats, [](std::uint64_t i) { keep(i); });
  results.push_back({"noop_baseline", baseline});

  registry.set_enabled(true);
  results.push_back({"counter_add_enabled",
                     measure_ns(ops, repeats, [&](std::uint64_t i) {
                       counter.add(1);
                       keep(i);
                     })});
  results.push_back({"histogram_observe_enabled",
                     measure_ns(ops, repeats, [&](std::uint64_t i) {
                       histogram.observe(static_cast<double>(i & 1023));
                       keep(i);
                     })});
  registry.set_enabled(false);
  const double counter_disabled =
      measure_ns(ops, repeats, [&](std::uint64_t i) {
        counter.add(1);
        keep(i);
      });
  results.push_back({"counter_add_disabled", counter_disabled});
  const double observe_disabled =
      measure_ns(ops, repeats, [&](std::uint64_t i) {
        histogram.observe(static_cast<double>(i & 1023));
        keep(i);
      });
  results.push_back({"histogram_observe_disabled", observe_disabled});

  collector.set_enabled(true);
  results.push_back({"trace_span_enabled",
                     measure_ns(ops, repeats, [&](std::uint64_t i) {
                       obs::TraceSpan span("bench/span", collector);
                       keep(i);
                     })});
  collector.set_enabled(false);
  const double span_disabled =
      measure_ns(ops, repeats, [&](std::uint64_t i) {
        obs::TraceSpan span("bench/span", collector);
        keep(i);
      });
  results.push_back({"trace_span_disabled", span_disabled});

  // Always-on diagnosis paths: the flight recorder has no disable
  // switch by design, and the windows/SLO trackers sit on the service
  // respond path. Each is a handful of relaxed atomic stores.
  obs::FlightRecorder flight(/*ring_capacity=*/4096);
  const double flight_record =
      measure_ns(ops, repeats, [&](std::uint64_t i) {
        flight.record(obs::FlightCode::kMark, i, "bench",
                      static_cast<double>(i & 1023));
        keep(i);
      });
  results.push_back({"flight_record", flight_record});

  obs::RollingWindow window(obs::HistogramSpec::latency_us(),
                            /*bucket_ns=*/1'000'000'000ULL,
                            /*bucket_count=*/16);
  const double window_observe =
      measure_ns(ops, repeats, [&](std::uint64_t i) {
        window.observe(static_cast<double>(i & 1023),
                       /*now=*/1'000'000'000ULL + i);
        keep(i);
      });
  results.push_back({"window_observe", window_observe});

  obs::SloTracker slo("bench/slo", 0.99);
  const double slo_record = measure_ns(ops, repeats, [&](std::uint64_t i) {
    slo.record((i & 7) != 0, /*now=*/1'000'000'000ULL + i);
    keep(i);
  });
  results.push_back({"slo_record", slo_record});

  bench::print_columns({"metric", "ns_per_op"});
  for (const Result& result : results) {
    std::printf("%30s %10.2f\n", result.name.c_str(), result.ns_per_op);
  }

  // Contract 1: disabled instrumentation is noise. A relaxed bool load
  // plus an untaken branch should vanish next to the loop itself; allow
  // a couple of nanoseconds of jitter before calling it a regression.
  const double slack_ns = 2.0 + baseline;
  for (const auto& [name, ns] :
       {std::pair<const char*, double>{"counter_add_disabled",
                                       counter_disabled},
        {"histogram_observe_disabled", observe_disabled},
        {"trace_span_disabled", span_disabled}}) {
    if (ns > slack_ns) {
      ctx.fail(std::string(name) + " = " + std::to_string(ns) +
               " ns/op exceeds noise bound " + std::to_string(slack_ns) +
               " ns/op");
    }
  }
  if (ctx.failures().empty()) {
    bench::print_note("disabled paths within noise of the no-op baseline");
  }

  // Contract 2: the always-on paths stay cheap in absolute terms. The
  // ceiling is generous (measured values are a few ns) — it exists to
  // catch an accidental lock or allocation on these paths, not drift.
  const double always_on_bound_ns = 200.0 + baseline;
  for (const auto& [name, ns] :
       {std::pair<const char*, double>{"flight_record", flight_record},
        {"window_observe", window_observe},
        {"slo_record", slo_record}}) {
    if (ns > always_on_bound_ns) {
      ctx.fail(std::string(name) + " = " + std::to_string(ns) +
               " ns/op exceeds always-on bound " +
               std::to_string(always_on_bound_ns) + " ns/op");
    }
  }

  // Contract 3: full instrumentation on a real sweep. Metrics are on by
  // default; tracing is the opt-in extra — measure with both.
  const bool metrics_were_enabled = obs::MetricsRegistry::global().enabled();
  obs::MetricsRegistry::global().set_enabled(false);
  obs::TraceCollector::global().set_enabled(false);
  const double off_seconds = sweep_seconds(repeats);
  obs::MetricsRegistry::global().set_enabled(true);
  obs::TraceCollector::global().set_enabled(true);
  const double on_seconds = sweep_seconds(repeats);
  obs::TraceCollector::global().set_enabled(false);
  obs::MetricsRegistry::global().set_enabled(metrics_were_enabled);
  const double ratio = off_seconds > 0.0 ? on_seconds / off_seconds : 1.0;
  // The ISSUE-level gate: <= 5% fully instrumented in full mode (the
  // workload is long enough to average out scheduler noise). Smoke
  // sweeps finish in milliseconds, so the bound loosens to 25% there.
  const double ratio_bound = ctx.pick(1.05, 1.25);
  std::printf("\nwelfare sweep: obs off %.4fs, obs on %.4fs, ratio %.3f "
              "(bound < %.2f)\n",
              off_seconds, on_seconds, ratio, ratio_bound);
  if (ratio >= ratio_bound) {
    ctx.fail("instrumented sweep ratio " + std::to_string(ratio) + " >= " +
             std::to_string(ratio_bound));
  }
  // 10 hot-path measurements + 2 sweeps per repetition.
  ctx.set_items(10 * ops + 2);
}
