// Retry extension (§5.2): blocked reservations retry with a per-retry
// utility penalty α = 0.1. Regenerates:
//  * the retry fixed point (inflated load, retries, blocking) across C;
//  * the gap amplification for the algebraic case at large C
//    (paper reads δ(4k̄): .027 with retries vs .0025 without);
//  * the non-monotone γ(p) (advantage of reservations grows as
//    bandwidth gets cheaper, then saturates);
//  * the asymptotic ratios ((z−1)/α)^{1/(z−2)} and their divergence.
#include <memory>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/asymptotics.h"
#include "bevr/core/retry.h"
#include "bevr/core/welfare.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/utility/utility.h"

BEVR_BENCHMARK(retry, "Sec 5.2 retry extension panels") {
  using namespace bevr;
  const double alpha = 0.1;
  const auto adaptive = std::make_shared<utility::AdaptiveExp>();
  const auto rigid = std::make_shared<utility::Rigid>(1.0);
  const auto algebraic_family =
      [](double mean) -> std::shared_ptr<const dist::DiscreteLoad> {
    return std::make_shared<dist::AlgebraicLoad>(
        dist::AlgebraicLoad::with_mean(3.0, mean));
  };
  const auto exponential_family =
      [](double mean) -> std::shared_ptr<const dist::DiscreteLoad> {
    return std::make_shared<dist::ExponentialLoad>(
        dist::ExponentialLoad::with_mean(mean));
  };
  std::uint64_t evaluations = 0;

  {
    bench::print_header(
        "Retry fixed point, exponential + rigid (alpha=0.1, kbar=100)");
    const core::RetryModel model(exponential_family, 100.0, rigid, alpha);
    bench::print_columns(
        {"C", "inflated_L", "retries_D", "blocking", "R_tilde", "B"});
    for (const double c : bench::linear_grid(120.0, 600.0, ctx.pick(9, 3))) {
      const auto s = model.solve(c);
      bench::print_row({c, s.inflated_mean, s.retries, s.blocking, s.utility,
                        model.best_effort(c)});
      evaluations += 2;
    }
    bench::print_note("large C: R_tilde ~ 1 - alpha*theta (Sec 5.2)");
  }
  {
    bench::print_header(
        "Retry gap amplification, algebraic z=3 + adaptive (alpha=0.1)");
    const core::RetryModel with_retries(algebraic_family, 100.0, adaptive,
                                        alpha);
    const core::VariableLoadModel without(algebraic_family(100.0), adaptive);
    bench::print_columns({"C", "delta_retry", "delta_basic", "ratio"});
    for (const double c : bench::linear_grid(150.0, 800.0, ctx.pick(7, 3))) {
      const double with_gap = with_retries.performance_gap(c);
      const double base_gap = without.performance_gap(c);
      bench::print_row({c, with_gap, base_gap, with_gap / base_gap});
      evaluations += 2;
    }
    bench::print_note(
        "paper reads .027 vs .0025 at C=4kbar off its plots; our fixed "
        "point gives ~.09 vs ~.007 - same ~10x amplification");
  }
  {
    bench::print_header(
        "Retry welfare gamma(p), algebraic z=3 + adaptive: non-monotone");
    const auto retry_model = std::make_shared<core::RetryModel>(
        algebraic_family, 100.0, adaptive, alpha);
    const core::WelfareAnalysis analysis(
        [retry_model](double c) { return retry_model->total_best_effort(c); },
        [retry_model](double c) { return retry_model->total_reservation(c); },
        100.0);
    bench::print_columns({"p", "gamma_retry(p)"});
    for (const double p : bench::log_grid(3e-3, 0.3, ctx.pick(6, 2))) {
      bench::print_row({p, analysis.price_ratio(p)});
      evaluations += 1;
    }
    bench::print_note(
        "paper: gamma now DECREASES for very small p yet stays bounded");
  }
  {
    bench::print_header("Retry asymptotic ratios vs z (alpha=0.1)");
    bench::print_columns({"z", "rigid", "adaptive(a=.5)", "basic_rigid"});
    for (const double z : {2.05, 2.1, 2.25, 2.5, 3.0, 4.0}) {
      bench::print_row(
          {z, core::asymptotics::capacity_ratio_rigid_retry(z, alpha),
           core::asymptotics::capacity_ratio_adaptive_retry(z, 0.5, alpha),
           core::asymptotics::capacity_ratio_rigid(z)});
      evaluations += 3;
    }
    bench::print_note(
        "((z-1)/alpha)^{1/(z-2)} diverges as z->2+ for alpha<1 (Sec 5.2)");
  }
  {
    bench::print_header(
        "Exponential + adaptive retry: Delta limit vs closed form");
    const core::RetryModel model(exponential_family, 100.0, adaptive, alpha);
    bench::print_columns({"C", "Delta_retry(C)", "closed_limit"});
    const double limit =
        core::asymptotics::exponential_adaptive_retry_gap_limit(0.00995033,
                                                                0.5, alpha);
    for (const double c : bench::linear_grid(200.0, 800.0, ctx.pick(4, 2))) {
      bench::print_row({c, model.bandwidth_gap(c), limit});
      evaluations += 1;
    }
    bench::print_note(
        "closed form uses the continuum PWL(a=.5) stand-in for AdaptiveExp; "
        "order-of-magnitude guide only");
  }
  ctx.set_items(evaluations);
}
