// §6 conjectured bounds: in the basic model the asymptotic advantage of
// reservations is bounded — lim (C+Δ)/C ≤ e and lim γ(p) ≤ e, attained
// as z → 2⁺ — while the sampling and retry extensions remove the bound.
// This bench sweeps z ↓ 2 and prints the measured continuum ratios next
// to the closed forms.
#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/asymptotics.h"
#include "bevr/core/continuum.h"

BEVR_BENCHMARK(bounds, "Sec 6 conjectured e-bounds and how extensions break them") {
  using namespace bevr;
  using namespace bevr::core;
  std::uint64_t evaluations = 0;

  {
    bench::print_header(
        "Basic model bound: (C+Delta)/C and gamma(p->0) as z -> 2+");
    bench::print_columns({"z", "measured_ratio", "closed_form", "gamma(1e-6)",
                          "e_bound"});
    const double e = asymptotics::basic_model_ratio_bound();
    for (const double z :
         {4.0, 3.0, 2.5, 2.25, 2.1, 2.05, 2.01, 2.001}) {
      const AlgebraicRigidContinuum model(z);
      const double c = 1e6;
      bench::print_row({z, (c + model.bandwidth_gap(c)) / c,
                        asymptotics::capacity_ratio_rigid(z),
                        model.equalizing_price_ratio(1e-6), e});
      evaluations += 3;
    }
    bench::print_note("both columns rise toward e = 2.71828 and never pass it");
  }
  {
    bench::print_header("Adaptive basic model: ratio vs adaptivity floor a");
    bench::print_columns({"a", "z=2.1", "z=3", "z=4"});
    for (const double a : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
      bench::print_row({a, asymptotics::capacity_ratio_adaptive(2.1, a),
                        asymptotics::capacity_ratio_adaptive(3.0, a),
                        asymptotics::capacity_ratio_adaptive(4.0, a)});
      evaluations += 3;
    }
    bench::print_note("a->1 recovers rigid; a->0 removes the advantage");
  }
  {
    bench::print_header(
        "Extensions break the bound: ratios at z = 2.05 (e = 2.718)");
    bench::print_columns({"case", "ratio"});
    std::printf("%14s%14.6g\n", "basic",
                asymptotics::capacity_ratio_rigid(2.05));
    std::printf("%14s%14.6g\n", "sampling_S2",
                asymptotics::capacity_ratio_rigid_sampling(2.05, 2));
    std::printf("%14s%14.6g\n", "sampling_S5",
                asymptotics::capacity_ratio_rigid_sampling(2.05, 5));
    std::printf("%14s%14.6g\n", "retry_a0.1",
                asymptotics::capacity_ratio_rigid_retry(2.05, 0.1));
    evaluations += 4;
  }
  bench::print_note(
      "sampling multiplies the base of the exponent by S, retry divides "
      "it by alpha: both diverge in the z->2+ limit (Sec 5, Sec 6)");
  ctx.set_items(evaluations);
}
