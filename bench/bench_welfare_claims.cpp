// §4 quoted welfare claims, paper-vs-measured:
//  * Poisson + rigid: γ(p) between ~1.1 and 1.2 over most prices;
//  * Poisson + adaptive: γ(p) ≈ 1 for all but the highest prices;
//  * exponential closed forms via Lambert-W, γ(p) → 1 as p → 0;
//  * algebraic rigid: γ(p→0) = (z−1)^{1/(z−2)} = 2 at z = 3;
//  * algebraic adaptive (discrete): γ(p→0) ≈ 1.02.
#include <cstdio>
#include <memory>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/continuum.h"
#include "bevr/core/variable_load.h"
#include "bevr/core/welfare.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

namespace {

using bevr::core::VariableLoadModel;
using bevr::core::WelfareAnalysis;

WelfareAnalysis make_analysis(std::shared_ptr<VariableLoadModel> model) {
  return WelfareAnalysis(
      [model](double c) { return model->total_best_effort(c); },
      [model](double c) { return model->total_reservation(c); },
      model->mean_load());
}

}  // namespace

BEVR_BENCHMARK(welfare_claims, "Sec 4 quoted gamma(p) welfare claims") {
  using namespace bevr;
  const auto rigid = std::make_shared<utility::Rigid>(1.0);
  const auto adaptive = std::make_shared<utility::AdaptiveExp>();
  std::uint64_t evaluations = 0;

  {
    bench::print_header("Discrete Poisson gamma(p) (paper: rigid in "
                        "[1.1,1.2]; adaptive ~1)");
    const auto rigid_model = std::make_shared<VariableLoadModel>(
        std::make_shared<dist::PoissonLoad>(100.0), rigid);
    const auto adaptive_model = std::make_shared<VariableLoadModel>(
        std::make_shared<dist::PoissonLoad>(100.0), adaptive);
    const auto rigid_analysis = make_analysis(rigid_model);
    const auto adaptive_analysis = make_analysis(adaptive_model);
    bench::print_columns({"p", "gamma_rigid", "gamma_adaptive"});
    for (const double p : bench::log_grid(1e-3, 0.4, ctx.pick(7, 3))) {
      bench::print_row({p, rigid_analysis.price_ratio(p),
                        adaptive_analysis.price_ratio(p)});
      evaluations += 2;
    }
  }
  {
    bench::print_header(
        "Continuum exponential gamma(p) via Lambert-W closed forms");
    const core::ExponentialRigidContinuum model(0.01);
    bench::print_columns({"p", "C_B(p)", "C_R(p)", "gamma(p)"});
    for (const double p : bench::log_grid(1e-8, 0.3, ctx.pick(8, 3))) {
      bench::print_row({p, model.capacity_best_effort(p),
                        model.capacity_reservation(p),
                        model.equalizing_price_ratio(p)});
      evaluations += 3;
    }
    bench::print_note("gamma -> 1 as p -> 0 (provisioning wins eventually)");
  }
  {
    bench::print_header(
        "Discrete algebraic z=3 gamma(p->0) (paper: rigid ~2, adaptive ~1.02)");
    VariableLoadModel::Options fast;
    fast.tail_eps = 1e-10;
    fast.direct_budget = 16'384;
    const auto rigid_model = std::make_shared<VariableLoadModel>(
        std::make_shared<dist::AlgebraicLoad>(
            dist::AlgebraicLoad::with_mean(3.0, 100.0)),
        rigid, fast);
    const auto adaptive_model = std::make_shared<VariableLoadModel>(
        std::make_shared<dist::AlgebraicLoad>(
            dist::AlgebraicLoad::with_mean(3.0, 100.0)),
        adaptive, fast);
    const auto rigid_analysis = make_analysis(rigid_model);
    const auto adaptive_analysis = make_analysis(adaptive_model);
    bench::print_columns({"p", "gamma_rigid", "gamma_adaptive"});
    for (const double p : bench::log_grid(3e-3, 0.3, ctx.pick(5, 2))) {
      bench::print_row({p, rigid_analysis.price_ratio(p),
                        adaptive_analysis.price_ratio(p)});
      evaluations += 2;
    }
    bench::print_note("continuum rigid value: (z-1)^{1/(z-2)} = 2");
  }
  ctx.set_items(evaluations);
}
