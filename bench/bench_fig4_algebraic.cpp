// Figure 4: algebraic load distribution (z = 3, k̄ = 100).
//
// Paper shape targets: rigid delta stays substantial over a wide range
// (~.20 at 2k̄) and Delta(C) grows LINEARLY with slope ≈ 1; adaptive
// Delta still grows linearly but with slope reduced by a factor > 20;
// gamma(p) does NOT converge to 1 as p → 0 (→ ≈ 2 for rigid, the
// continuum value (z−1)^{1/(z−2)}).
#include "figure_panels.h"

#include "bevr/bench/registry.h"
#include "bevr/dist/algebraic.h"

BEVR_BENCHMARK(fig4_algebraic,
               "Figure 4 panels: algebraic load z=3, kbar=100") {
  using namespace bevr;
  bench::FigureConfig config;
  config.figure_name = "Figure 4 [Algebraic z=3, kbar=100]";
  config.load = std::make_shared<dist::AlgebraicLoad>(
      dist::AlgebraicLoad::with_mean(3.0, 100.0));
  config.capacities = bench::linear_grid(10.0, 800.0, ctx.pick(40, 8));
  config.prices = bench::log_grid(3e-3, 0.4, ctx.pick(7, 3));
  config.fast_welfare = true;
  ctx.set_items(bench::figure_items(config));
  bench::run_figure(config);
}
