// Paper-quoted numerical claims (§3.3 text): each row prints the value
// the paper reports next to the value this implementation measures.
// These are the canonical reproduction anchors recorded in
// EXPERIMENTS.md.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

namespace {

void claim(const char* description, double paper, double measured) {
  std::printf("  %-58s paper=%10.4g   measured=%10.4g\n", description, paper,
              measured);
}

}  // namespace

BEVR_BENCHMARK(text_claims, "Sec 3.3 quoted values, paper vs measured") {
  using namespace bevr;
  const auto poisson = std::make_shared<dist::PoissonLoad>(100.0);
  const auto exponential = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  const auto algebraic = std::make_shared<dist::AlgebraicLoad>(
      dist::AlgebraicLoad::with_mean(3.0, 100.0));
  const auto rigid = std::make_shared<utility::Rigid>(1.0);
  const auto adaptive = std::make_shared<utility::AdaptiveExp>();

  bench::print_header("Section 3.3 quoted values (kbar = 100)");

  // The peak scans dominate the cost; smoke strides them coarsely.
  const double delta_step = ctx.pick(1.0, 16.0);
  const double gap_step = ctx.pick(5.0, 40.0);

  {
    const core::VariableLoadModel model(poisson, rigid);
    double peak_delta = 0.0, peak_gap = 0.0;
    for (double c = 2.0; c <= 150.0; c += delta_step) {
      peak_delta = std::max(peak_delta, model.performance_gap(c));
      peak_gap = std::max(peak_gap, model.bandwidth_gap(c));
    }
    claim("Poisson/rigid: peak performance gap delta", 0.8, peak_delta);
    claim("Poisson/rigid: peak bandwidth gap Delta", 80.0, peak_gap);
    claim("Poisson/rigid: delta at C=2kbar (paper: <1e-15)", 1e-15,
          model.performance_gap(200.0));
  }
  {
    const core::VariableLoadModel model(exponential, rigid);
    claim("Exponential/rigid: delta at C=2kbar", 0.27,
          model.performance_gap(200.0));
    claim("Exponential/rigid: delta at C=4kbar", 0.07,
          model.performance_gap(400.0));
    claim("Exponential/rigid: Delta(400)-Delta(200) (log growth, >0)",
          std::log(2.0) * 100.0,
          model.bandwidth_gap(400.0) - model.bandwidth_gap(200.0));
  }
  {
    const core::VariableLoadModel model(exponential, adaptive);
    claim("Exponential/adaptive: delta at C=2kbar (paper: <.01)", 0.01,
          model.performance_gap(200.0));
    claim("Exponential/adaptive: delta at C=4kbar (paper: <.001)", 0.001,
          model.performance_gap(400.0));
    double peak = 0.0;
    for (double c = 10.0; c <= 400.0; c += gap_step) {
      peak = std::max(peak, model.bandwidth_gap(c));
    }
    claim("Exponential/adaptive: peak bandwidth gap Delta", 9.0, peak);
  }
  {
    const core::VariableLoadModel model(algebraic, rigid);
    claim("Algebraic(z=3)/rigid: delta at C=2kbar", 0.20,
          model.performance_gap(200.0));
    claim("Algebraic(z=3)/rigid: delta at C=4kbar", 0.10,
          model.performance_gap(400.0));
    const double slope =
        (model.bandwidth_gap(800.0) - model.bandwidth_gap(400.0)) / 400.0;
    claim("Algebraic(z=3)/rigid: Delta slope (linear, ~1)", 1.0, slope);
    // Contract: the signature asymptotic law must survive any numeric
    // refactor — linear Delta growth with slope near 1 at z=3.
    if (slope < 0.5 || slope > 2.0) {
      ctx.fail("algebraic rigid Delta slope " + std::to_string(slope) +
               " left [0.5, 2.0]");
    }
  }
  {
    const core::VariableLoadModel rigid_model(algebraic, rigid);
    const core::VariableLoadModel adaptive_model(algebraic, adaptive);
    const double slope_rigid =
        (rigid_model.bandwidth_gap(800.0) - rigid_model.bandwidth_gap(400.0)) /
        400.0;
    const double slope_adaptive = (adaptive_model.bandwidth_gap(800.0) -
                                   adaptive_model.bandwidth_gap(400.0)) /
                                  400.0;
    claim("Algebraic(z=3): rigid/adaptive slope ratio (paper: >20)", 20.0,
          slope_rigid / slope_adaptive);
  }
  bench::print_note(
      "paper values are read off its plots; shape/ordering is the target");
}
