// Entry point shared by every bench binary: run whatever suites this
// binary registered. Linked once into each per-figure binary and once
// into the bevr_bench aggregate.
#include "bevr/bench/bench_main.h"

int main(int argc, char** argv) {
  return bevr::bench::bench_main(argc, argv);
}
