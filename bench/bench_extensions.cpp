// §5's briefly-mentioned extensions, built out and measured:
// heterogeneous flow populations (mixture utilities), risk-averse
// utility functionals (both admission-lottery conventions), and
// nonstationary loads (regime mixtures). The paper reports these "did
// not change the basic nature of our asymptotic (large C) results
// (although some of them substantially perturbed the results in the
// C ≈ k̄ region)" — both halves are shown.
#include <memory>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/risk_averse.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/mixture_load.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/mixture.h"
#include "bevr/utility/utility.h"

BEVR_BENCHMARK(extensions, "Sec 5 heterogeneity/risk/nonstationary panels") {
  using namespace bevr;
  const auto exponential = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  const auto algebraic = std::make_shared<dist::AlgebraicLoad>(
      dist::AlgebraicLoad::with_mean(3.0, 100.0));
  const auto rigid = std::make_shared<utility::Rigid>(1.0);
  const auto adaptive = std::make_shared<utility::AdaptiveExp>();
  std::uint64_t evaluations = 0;

  {
    bench::print_header(
        "Heterogeneous population (50% rigid, 50% adaptive), exponential");
    const auto mix = std::make_shared<utility::MixtureUtility>(
        std::vector<utility::MixtureComponent>{
            {rigid, 1.0, 1.0}, {adaptive, 1.0, 1.0}});
    const core::VariableLoadModel mixed(exponential, mix);
    const core::VariableLoadModel pure_rigid(exponential, rigid);
    const core::VariableLoadModel pure_adaptive(exponential, adaptive);
    bench::print_columns({"C", "delta_rigid", "delta_mixed", "delta_adapt"});
    for (const double c : bench::linear_grid(50.0, 400.0, ctx.pick(8, 3))) {
      bench::print_row({c, pure_rigid.performance_gap(c),
                        mixed.performance_gap(c),
                        pure_adaptive.performance_gap(c)});
      evaluations += 3;
    }
    bench::print_note("the mixture interpolates its pure classes");
  }
  {
    bench::print_header(
        "Heterogeneous flow SIZES (scale 1 vs 3), algebraic z=3, rigid");
    const auto sized = std::make_shared<utility::MixtureUtility>(
        std::vector<utility::MixtureComponent>{
            {rigid, 3.0, 1.0}, {rigid, 1.0, 3.0}});
    const core::VariableLoadModel model(algebraic, sized);
    bench::print_columns({"C", "Delta(C)", "Delta/C"});
    for (const double c : bench::log_grid(200.0, 3200.0, ctx.pick(5, 2))) {
      const double gap = model.bandwidth_gap(c);
      bench::print_row({c, gap, gap / c});
      evaluations += 1;
    }
    bench::print_note("Delta stays LINEAR: the asymptotic law survives "
                      "heterogeneity (Sec 5)");
  }
  {
    bench::print_header(
        "Risk aversion (lambda sweep), exponential + adaptive, C = 150");
    bench::print_columns({"lambda", "B_cond", "R_cond", "gap_cond",
                          "gap_uncond"});
    for (const double lambda : {0.0, 0.25, 0.5, 1.0, 2.0}) {
      const core::RiskAverseModel conditional(
          exponential, adaptive, lambda, core::BlockingRisk::kConditional);
      const core::RiskAverseModel unconditional(
          exponential, adaptive, lambda, core::BlockingRisk::kUnconditional);
      bench::print_row({lambda, conditional.best_effort(150.0),
                        conditional.reservation(150.0),
                        conditional.performance_gap(150.0),
                        unconditional.performance_gap(150.0)});
      evaluations += 4;
    }
    bench::print_note(
        "conditional convention: reservations shield the spread, gap "
        "widens; unconditional: the admission lottery itself is risky and "
        "the gap can vanish");
  }
  {
    bench::print_header(
        "Risk aversion asymptotics, algebraic z=3 + rigid (lambda=0.5)");
    const core::RiskAverseModel conditional(
        algebraic, rigid, 0.5, core::BlockingRisk::kConditional);
    const core::RiskAverseModel unconditional(
        algebraic, rigid, 0.5, core::BlockingRisk::kUnconditional);
    bench::print_columns({"C", "ratio_cond", "ratio_uncond"});
    for (const double c : bench::log_grid(400.0, 6400.0, ctx.pick(5, 2))) {
      bench::print_row({c, (c + conditional.bandwidth_gap(c)) / c,
                        (c + unconditional.bandwidth_gap(c)) / c});
      evaluations += 2;
    }
    bench::print_note(
        "unconditional converges (paper's invariance claim); conditional "
        "diverges because rigid reservations have zero conditional spread");
  }
  {
    bench::print_header(
        "Nonstationary load: day/night Poisson(150)/Poisson(50) mixture");
    const auto mix = std::make_shared<dist::MixtureLoad>(
        std::vector<dist::LoadRegime>{
            {std::make_shared<dist::PoissonLoad>(150.0), 1.0},
            {std::make_shared<dist::PoissonLoad>(50.0), 1.0}});
    const core::VariableLoadModel mixed(mix, rigid);
    const core::VariableLoadModel stationary(
        std::make_shared<dist::PoissonLoad>(100.0), rigid);
    bench::print_columns({"C", "delta_mixture", "delta_Poisson100"});
    for (const double c : bench::linear_grid(60.0, 220.0, ctx.pick(9, 3))) {
      bench::print_row({c, mixed.performance_gap(c),
                        stationary.performance_gap(c)});
      evaluations += 2;
    }
    bench::print_note(
        "regime switching keeps the gap alive until C covers the PEAK "
        "regime, not the average load");
  }
  {
    bench::print_header(
        "Nonstationary + heavy regime: 90% Poisson / 10% algebraic, rigid");
    const auto mix = std::make_shared<dist::MixtureLoad>(
        std::vector<dist::LoadRegime>{
            {std::make_shared<dist::PoissonLoad>(100.0), 9.0},
            {algebraic, 1.0}});
    const core::VariableLoadModel model(mix, rigid);
    bench::print_columns({"C", "Delta(C)", "Delta/C"});
    for (const double c : bench::log_grid(400.0, 3200.0, ctx.pick(4, 2))) {
      const double gap = model.bandwidth_gap(c);
      bench::print_row({c, gap, gap / c});
      evaluations += 1;
    }
    bench::print_note("a 10% heavy-tailed regime is enough to keep Delta "
                      "growing linearly forever");
  }
  ctx.set_items(evaluations);
}
