// Figure 2: Poisson load distribution (k̄ = 100) — utility, bandwidth
// gap, and equalising price ratio for rigid and adaptive applications.
//
// Paper shape targets: delta peaks ~0.8 (rigid) below C = k̄; Delta
// peaks ~80; both vanish faster than exponentially for C > k̄; the
// adaptive panels show near-coincident B and R; gamma(p) sits in
// [1.1, 1.2] for rigid over most prices and ~1 for adaptive.
#include "figure_panels.h"

#include "bevr/bench/registry.h"
#include "bevr/dist/poisson.h"

BEVR_BENCHMARK(fig2_poisson, "Figure 2 panels: Poisson load, kbar=100") {
  using namespace bevr;
  bench::FigureConfig config;
  config.figure_name = "Figure 2 [Poisson, kbar=100]";
  config.load = std::make_shared<dist::PoissonLoad>(100.0);
  config.capacities = bench::linear_grid(10.0, 400.0, ctx.pick(40, 8));
  config.prices = bench::log_grid(1e-3, 0.4, ctx.pick(9, 3));
  ctx.set_items(bench::figure_items(config));
  bench::run_figure(config);
}
