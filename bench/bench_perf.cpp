// Performance microbenchmarks of the numeric engines: per-evaluation
// cost of B/R/Δ across the three load families, plus the simulator's
// event throughput. These guard against regressions in the hybrid
// series/integral evaluation strategy. Each hot path is its own suite
// so the JSON artifact carries one median per engine and the baseline
// gate can flag them individually.
#include <cstdint>
#include <memory>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/continuum.h"
#include "bevr/core/sampling.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/numerics/special.h"
#include "bevr/sim/simulator.h"
#include "bevr/utility/utility.h"

namespace {

using namespace bevr;

/// Keep `value` alive past the optimizer (doubles included, hence the
/// memory constraint).
template <typename T>
inline void keep(T value) {
  __asm__ __volatile__("" : "+m"(value) : : "memory");
}

std::shared_ptr<const dist::DiscreteLoad> load_by_index(int index) {
  switch (index) {
    case 0:
      return std::make_shared<dist::PoissonLoad>(100.0);
    case 1:
      return std::make_shared<dist::ExponentialLoad>(
          dist::ExponentialLoad::with_mean(100.0));
    default:
      return std::make_shared<dist::AlgebraicLoad>(
          dist::AlgebraicLoad::with_mean(3.0, 100.0));
  }
}

const char* load_name(int index) {
  switch (index) {
    case 0:
      return "poisson";
    case 1:
      return "exponential";
    default:
      return "algebraic";
  }
}

}  // namespace

BEVR_BENCHMARK(perf_best_effort, "B(C) evaluation cost per load family") {
  const std::uint64_t iters = ctx.pick(std::uint64_t{200}, std::uint64_t{8});
  bench::print_columns({"load", "iters"});
  for (int index = 0; index < 3; ++index) {
    const core::VariableLoadModel model(
        load_by_index(index), std::make_shared<utility::AdaptiveExp>());
    double c = 100.0;
    for (std::uint64_t i = 0; i < iters; ++i) {
      keep(model.best_effort(c));
      c = (c == 100.0) ? 200.0 : 100.0;  // defeat any memoisation
    }
    bench::print_row({static_cast<double>(index), static_cast<double>(iters)});
    bench::print_note(load_name(index));
  }
  ctx.set_items(3 * iters);
}

BEVR_BENCHMARK(perf_bandwidth_gap, "Delta(C) evaluation cost per load family") {
  const std::uint64_t iters = ctx.pick(std::uint64_t{50}, std::uint64_t{3});
  for (int index = 0; index < 3; ++index) {
    const core::VariableLoadModel model(
        load_by_index(index), std::make_shared<utility::AdaptiveExp>());
    for (std::uint64_t i = 0; i < iters; ++i) {
      keep(model.bandwidth_gap(150.0));
    }
  }
  ctx.set_items(3 * iters);
}

BEVR_BENCHMARK(perf_sampling, "sampling-model R(C) cost vs S") {
  const std::uint64_t iters = ctx.pick(std::uint64_t{50}, std::uint64_t{3});
  for (const int samples : {1, 5, 10}) {
    const core::SamplingModel model(
        load_by_index(1), std::make_shared<utility::AdaptiveExp>(), samples);
    for (std::uint64_t i = 0; i < iters; ++i) {
      keep(model.reservation(150.0));
    }
  }
  ctx.set_items(3 * iters);
}

BEVR_BENCHMARK(perf_hurwitz_zeta, "Hurwitz zeta evaluation cost") {
  const std::uint64_t iters =
      ctx.pick(std::uint64_t{200'000}, std::uint64_t{10'000});
  double q = 1.0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    keep(numerics::hurwitz_zeta(3.0, q));
    q = (q >= 1000.0) ? 1.0 : q + 1.0;
  }
  ctx.set_items(iters);
}

BEVR_BENCHMARK(perf_continuum, "continuum closed-form Delta(C) cost") {
  const std::uint64_t iters =
      ctx.pick(std::uint64_t{1'000'000}, std::uint64_t{50'000});
  const core::AlgebraicAdaptiveContinuum model(3.0, 0.5);
  double c = 2.0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    keep(model.bandwidth_gap(c));
    c = (c >= 1e6) ? 2.0 : c * 1.5;
  }
  ctx.set_items(iters);
}

BEVR_BENCHMARK(perf_simulator, "flow simulator event throughput") {
  sim::SimulationConfig config;
  config.capacity = 100.0;
  config.horizon = ctx.pick(200.0, 50.0);
  config.warmup = 10.0;
  config.seed = 7;
  config.architecture = sim::Architecture::kBestEffort;
  const sim::FlowSimulator simulator(
      config, std::make_shared<utility::AdaptiveExp>(),
      std::make_shared<sim::PoissonArrivals>(100.0),
      std::make_shared<sim::ExponentialHolding>(1.0));
  const std::uint64_t iters = ctx.pick(std::uint64_t{10}, std::uint64_t{2});
  std::uint64_t flows = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const auto report = simulator.run();
    flows += report.flows_scored;
    keep(report.mean_utility);
  }
  ctx.set_items(flows);
}
