// Performance microbenchmarks (google-benchmark) of the numeric
// engines: per-evaluation cost of B/R/Δ across the three load
// families, plus the simulator's event throughput. These guard against
// regressions in the hybrid series/integral evaluation strategy.
#include <memory>

#include <benchmark/benchmark.h>

#include "bevr/core/continuum.h"
#include "bevr/core/sampling.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/numerics/special.h"
#include "bevr/sim/simulator.h"
#include "bevr/utility/utility.h"

namespace {

using namespace bevr;

std::shared_ptr<const dist::DiscreteLoad> load_by_index(int index) {
  switch (index) {
    case 0:
      return std::make_shared<dist::PoissonLoad>(100.0);
    case 1:
      return std::make_shared<dist::ExponentialLoad>(
          dist::ExponentialLoad::with_mean(100.0));
    default:
      return std::make_shared<dist::AlgebraicLoad>(
          dist::AlgebraicLoad::with_mean(3.0, 100.0));
  }
}

void BM_BestEffort(benchmark::State& state) {
  const core::VariableLoadModel model(
      load_by_index(static_cast<int>(state.range(0))),
      std::make_shared<utility::AdaptiveExp>());
  double c = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.best_effort(c));
    c = (c == 100.0) ? 200.0 : 100.0;  // defeat any memoisation
  }
}
BENCHMARK(BM_BestEffort)->Arg(0)->Arg(1)->Arg(2);

void BM_BandwidthGap(benchmark::State& state) {
  const core::VariableLoadModel model(
      load_by_index(static_cast<int>(state.range(0))),
      std::make_shared<utility::AdaptiveExp>());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.bandwidth_gap(150.0));
  }
}
BENCHMARK(BM_BandwidthGap)->Arg(0)->Arg(1)->Arg(2);

void BM_SamplingReservation(benchmark::State& state) {
  const core::SamplingModel model(
      load_by_index(1), std::make_shared<utility::AdaptiveExp>(),
      static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.reservation(150.0));
  }
}
BENCHMARK(BM_SamplingReservation)->Arg(1)->Arg(5)->Arg(10);

void BM_HurwitzZeta(benchmark::State& state) {
  double q = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(numerics::hurwitz_zeta(3.0, q));
    q = (q >= 1000.0) ? 1.0 : q + 1.0;
  }
}
BENCHMARK(BM_HurwitzZeta);

void BM_ContinuumClosedForm(benchmark::State& state) {
  const core::AlgebraicAdaptiveContinuum model(3.0, 0.5);
  double c = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.bandwidth_gap(c));
    c = (c >= 1e6) ? 2.0 : c * 1.5;
  }
}
BENCHMARK(BM_ContinuumClosedForm);

void BM_SimulatorThroughput(benchmark::State& state) {
  sim::SimulationConfig config;
  config.capacity = 100.0;
  config.horizon = 200.0;
  config.warmup = 10.0;
  config.seed = 7;
  config.architecture = sim::Architecture::kBestEffort;
  const sim::FlowSimulator simulator(
      config, std::make_shared<utility::AdaptiveExp>(),
      std::make_shared<sim::PoissonArrivals>(100.0),
      std::make_shared<sim::ExponentialHolding>(1.0));
  std::uint64_t flows = 0;
  for (auto _ : state) {
    const auto report = simulator.run();
    flows += report.flows_scored;
    benchmark::DoNotOptimize(report.mean_utility);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows));
}
BENCHMARK(BM_SimulatorThroughput);

}  // namespace

BENCHMARK_MAIN();
