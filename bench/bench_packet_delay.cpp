// Packet-level grounding of the architecture debate: what "quality"
// actually means at the data plane. A token-bucket-conformant reserved
// flow (σ = 5, ρ = 1) shares a 10-unit link with increasingly hostile
// cross traffic. Under WFQ its worst-case delay obeys the
// Parekh–Gallager bound σ/R + L/R + L/C regardless of the cross load;
// under FIFO it tracks the aggregate backlog — the best-effort failure
// mode that motivates reservations (paper §1, ref [10]).
#include <vector>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/net/packet_link.h"
#include "bevr/net/packet_sched.h"

BEVR_BENCHMARK(packet_delay, "WFQ vs FIFO packet delay under cross load") {
  using namespace bevr;
  const double capacity = 10.0;
  const double sigma = 5.0, rho = 1.0, packet = 1.0;
  const double horizon = ctx.pick(300.0, 60.0);
  const double bound = sigma / rho + packet / rho + packet / capacity;
  std::uint64_t link_sims = 0;

  bench::print_header(
      "Reserved flow delay vs cross load (C=10, sigma=5, rho=1)");
  bench::print_columns({"cross_load", "wfq_mean", "wfq_max", "fifo_mean",
                        "fifo_max", "pg_bound"});
  const std::vector<double> cross_rates =
      ctx.smoke() ? std::vector<double>{8.0, 12.0}
                  : std::vector<double>{4.0, 8.0, 9.0, 10.0, 12.0, 16.0};
  for (const double cross_rate : cross_rates) {
    auto reserved =
        net::token_bucket_burst_packets(1, sigma, rho, packet, 0.0, horizon);
    const auto cross =
        net::cbr_packets(2, cross_rate, packet, 0.0, horizon);

    net::WfqScheduler wfq(capacity);
    wfq.add_flow(1, rho);
    wfq.add_flow(2, capacity - rho);
    std::vector<net::Packet> wfq_packets = reserved;
    wfq_packets.insert(wfq_packets.end(), cross.begin(), cross.end());
    const auto wfq_report =
        net::simulate_link(capacity, wfq, std::move(wfq_packets));

    net::FifoScheduler fifo;
    std::vector<net::Packet> fifo_packets = reserved;
    fifo_packets.insert(fifo_packets.end(), cross.begin(), cross.end());
    const auto fifo_report =
        net::simulate_link(capacity, fifo, std::move(fifo_packets));
    link_sims += 2;

    bench::print_row({cross_rate, wfq_report.flows.at(1).mean_delay,
                      wfq_report.flows.at(1).max_delay,
                      fifo_report.flows.at(1).mean_delay,
                      fifo_report.flows.at(1).max_delay, bound});

    // Contract: the PGPS guarantee is the whole point of this bench.
    if (wfq_report.flows.at(1).max_delay > bound + 1e-9) {
      ctx.fail("WFQ max delay " +
               std::to_string(wfq_report.flows.at(1).max_delay) +
               " exceeded the Parekh-Gallager bound " + std::to_string(bound) +
               " at cross load " + std::to_string(cross_rate));
    }
  }
  bench::print_note(
      "WFQ's max delay stays under the PGPS bound at every cross load; "
      "FIFO's diverges once the aggregate exceeds C");

  bench::print_header(
      "Isolation under 2x overload: who absorbs the congestion?");
  bench::print_columns({"flow", "wfq_mean_d", "wfq_max_d", "fifo_mean_d",
                        "fifo_max_d"});
  {
    // Flow 1 is conformant (rate 1, reservation 1); flow 2 floods at 19
    // on a 10-unit link. Work conservation makes long-run throughput
    // identical, so the protection shows up in DELAY: WFQ pins the
    // congestion on the flooder, FIFO spreads it over everyone.
    net::WfqScheduler wfq(capacity);
    wfq.add_flow(1, 1.0);
    wfq.add_flow(2, 9.0);
    std::vector<net::Packet> packets =
        net::cbr_packets(1, 1.0, packet, 0.0, horizon);
    const auto cross = net::cbr_packets(2, 19.0, packet, 0.0, horizon);
    packets.insert(packets.end(), cross.begin(), cross.end());
    auto fifo_packets = packets;
    const auto wfq_report =
        net::simulate_link(capacity, wfq, std::move(packets));
    net::FifoScheduler fifo;
    const auto fifo_report =
        net::simulate_link(capacity, fifo, std::move(fifo_packets));
    link_sims += 2;
    for (const std::uint64_t flow : {1ULL, 2ULL}) {
      bench::print_row({static_cast<double>(flow),
                        wfq_report.flows.at(flow).mean_delay,
                        wfq_report.flows.at(flow).max_delay,
                        fifo_report.flows.at(flow).mean_delay,
                        fifo_report.flows.at(flow).max_delay});
    }
  }
  bench::print_note(
      "under WFQ the conformant flow keeps millisecond-scale delay while "
      "the flooder queues against itself; under FIFO both drown together");
  ctx.set_items(link_sims);
}
