// Sampling extension (§5.1): a flow's performance is driven by the
// worst of S load samples. Regenerates the quoted effects:
//  * Poisson case barely moves;
//  * exponential + adaptive: delta near k̄ jumps from <.01 to ≈.2, and
//    the Delta peak grows to ≈ 2k̄ around C ≈ 1.5k̄ (still → 0);
//  * algebraic: the asymptotic capacity ratio grows to
//    (S(z−1))^{1/(z−2)}, breaking the basic model's e bound as z→2⁺.
#include <memory>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/asymptotics.h"
#include "bevr/core/sampling.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

BEVR_BENCHMARK(sampling, "Sec 5.1 sampling extension panels") {
  using namespace bevr;
  const auto poisson = std::make_shared<dist::PoissonLoad>(100.0);
  const auto exponential = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  const auto algebraic = std::make_shared<dist::AlgebraicLoad>(
      dist::AlgebraicLoad::with_mean(3.0, 100.0));
  const auto rigid = std::make_shared<utility::Rigid>(1.0);
  const auto adaptive = std::make_shared<utility::AdaptiveExp>();
  std::uint64_t evaluations = 0;

  {
    bench::print_header(
        "Sampling, exponential + adaptive: delta(C) for S in {1,2,5,10}");
    const core::SamplingModel s1(exponential, adaptive, 1);
    const core::SamplingModel s2(exponential, adaptive, 2);
    const core::SamplingModel s5(exponential, adaptive, 5);
    const core::SamplingModel s10(exponential, adaptive, 10);
    bench::print_columns({"C", "S=1", "S=2", "S=5", "S=10"});
    for (const double c : bench::linear_grid(25.0, 500.0, ctx.pick(20, 5))) {
      bench::print_row({c, s1.performance_gap(c), s2.performance_gap(c),
                        s5.performance_gap(c), s10.performance_gap(c)});
      evaluations += 4;
    }
    bench::print_note(
        "paper: delta ~ .21 near C~kbar with sampling vs <.01 basic");
  }
  {
    bench::print_header(
        "Sampling, exponential + adaptive: bandwidth gap Delta(C), S=10");
    const core::SamplingModel s10(exponential, adaptive, 10);
    const core::SamplingModel s1(exponential, adaptive, 1);
    bench::print_columns({"C", "Delta_S1", "Delta_S10"});
    for (const double c : bench::linear_grid(50.0, 600.0, ctx.pick(12, 3))) {
      bench::print_row({c, s1.bandwidth_gap(c), s10.bandwidth_gap(c)});
      evaluations += 2;
    }
    bench::print_note(
        "paper: peak moves to ~2kbar near C ~ 1.5kbar; still -> 0 as C grows");
  }
  {
    bench::print_header("Sampling, Poisson + adaptive: little effect");
    const core::SamplingModel s1(poisson, adaptive, 1);
    const core::SamplingModel s10(poisson, adaptive, 10);
    bench::print_columns({"C", "delta_S1", "delta_S10"});
    for (const double c : bench::linear_grid(50.0, 300.0, ctx.pick(6, 3))) {
      bench::print_row({c, s1.performance_gap(c), s10.performance_gap(c)});
      evaluations += 2;
    }
  }
  {
    bench::print_header(
        "Sampling, algebraic z=3 + rigid: capacity ratio (C+Delta)/C");
    const core::SamplingModel s1(algebraic, rigid, 1);
    const core::SamplingModel s2(algebraic, rigid, 2);
    bench::print_columns({"C", "ratio_S1", "ratio_S2", "asym_S1", "asym_S2"});
    const double asym1 = core::asymptotics::capacity_ratio_rigid_sampling(3.0, 1);
    const double asym2 = core::asymptotics::capacity_ratio_rigid_sampling(3.0, 2);
    for (const double c : bench::log_grid(200.0, 3200.0, ctx.pick(5, 2))) {
      bench::print_row({c, (c + s1.bandwidth_gap(c)) / c,
                        (c + s2.bandwidth_gap(c)) / c, asym1, asym2});
      evaluations += 2;
    }
    bench::print_note("continuum asymptote (S(z-1))^{1/(z-2)}: 2 and 4");
  }
  {
    bench::print_header(
        "Sampling asymptotic ratios vs z (divergence as z -> 2+)");
    bench::print_columns({"z", "S=1", "S=2", "S=5", "adaptive(a=.5,S=2)"});
    for (const double z : {2.05, 2.1, 2.25, 2.5, 3.0, 4.0}) {
      bench::print_row(
          {z, core::asymptotics::capacity_ratio_rigid_sampling(z, 1),
           core::asymptotics::capacity_ratio_rigid_sampling(z, 2),
           core::asymptotics::capacity_ratio_rigid_sampling(z, 5),
           core::asymptotics::capacity_ratio_adaptive_sampling(z, 0.5, 2)});
      evaluations += 4;
    }
    bench::print_note("S=1 stays below e = 2.71828; S>1 diverges (Sec 5.1)");
  }
  ctx.set_items(evaluations);
}
