// bench_admission: the admission layer under load.
//
// Two suites:
//  * admission_calendar — hot-path microbench of the capacity
//    calendar: reserve/probe/release cycles over a sliding window;
//    asserts conservation on the traffic it just pushed (every
//    admitted booking released, the calendar drains to empty, and the
//    offer counters add up).
//  * admission_replay — end-to-end engine replay: one synthetic trace
//    evaluated under all three policies; reports per-policy replay
//    rates and asserts the comparison contracts (best effort never
//    blocks, calendar policies conserve offered = admitted + blocked,
//    and the whole pipeline is bit-deterministic run over run).
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bevr/admission/calendar.h"
#include "bevr/admission/engine.h"
#include "bevr/admission/policy.h"
#include "bevr/admission/trace.h"
#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/sim/rng.h"
#include "bevr/utility/utility.h"

namespace {

using namespace bevr;

}  // namespace

BEVR_BENCHMARK(admission_calendar,
               "capacity calendar reserve/probe/release hot path") {
  admission::CapacityCalendar::Options options;
  options.capacity = 100.0;
  options.tick = 0.25;
  admission::CapacityCalendar calendar(options);

  const int cycles = ctx.pick(20'000, 1'000);
  constexpr std::size_t kConcurrent = 64;  // bookings held at once
  std::vector<std::uint64_t> held;
  held.reserve(kConcurrent);
  std::uint64_t admitted = 0;
  std::uint64_t released = 0;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Slide a booking window along the time axis, keeping kConcurrent
    // live reservations and probing availability like a policy would.
    const double start = 0.125 * cycle;
    (void)calendar.available(start, start + 2.0);
    const auto offer = calendar.reserve(start, start + 2.0, 1.0);
    if (offer.admitted) {
      ++admitted;
      held.push_back(offer.id);
    }
    if (held.size() >= kConcurrent) {
      if (calendar.release(held.front(), start)) ++released;
      held.erase(held.begin());
    }
    (void)calendar.expire_until(start);
  }
  for (const auto id : held) {
    if (calendar.release(id, 0.0)) ++released;
  }
  ctx.set_items(static_cast<std::uint64_t>(cycles));

  bench::print_columns({"cycles", "admitted", "released", "offers",
                        "counteroffers"});
  bench::print_row({static_cast<double>(cycles),
                    static_cast<double>(admitted),
                    static_cast<double>(released),
                    static_cast<double>(calendar.offers()),
                    static_cast<double>(calendar.counteroffers())});

  // Conservation contracts on the traffic just pushed.
  if (calendar.offers() != static_cast<std::uint64_t>(cycles)) {
    ctx.fail("offer counter lost reserve calls");
  }
  if (admitted + calendar.counteroffers() !=
      static_cast<std::uint64_t>(cycles)) {
    ctx.fail("admitted + counteroffers must cover every reserve call");
  }
  if (released + calendar.expirations() != admitted) {
    ctx.fail("every admitted booking must be released exactly once");
  }
  if (calendar.active() != 0) {
    ctx.fail("calendar must drain to zero live reservations");
  }
}

BEVR_BENCHMARK(admission_replay,
               "one trace replayed under all three admission policies") {
  admission::TraceSpec spec;
  spec.kind = admission::TraceKind::kPoisson;
  spec.arrival_rate = 120.0;
  spec.mean_duration = 1.0;
  spec.horizon = ctx.pick(200.0, 20.0);
  spec.book_ahead = 1.0;
  spec.cancel_p = 0.05;
  const auto trace = admission::generate_trace(spec, sim::Rng(42));

  admission::PolicyConfig config;
  config.capacity = 100.0;
  config.pi = std::make_shared<utility::Rigid>(1.0);
  config.min_rate_fraction = 0.5;
  config.max_start_shift = 2.0;
  admission::EngineConfig engine;
  engine.warmup = spec.horizon / 10.0;
  engine.flush_obs = false;  // microbench: keep the registry quiet

  const auto replay = [&](admission::PolicyKind kind) {
    const auto policy = admission::make_policy(kind, config);
    return admission::run_admission(trace, *policy, *config.pi, engine);
  };

  const auto best_effort = replay(admission::PolicyKind::kBestEffort);
  const auto online = replay(admission::PolicyKind::kOnlineKmax);
  const auto advance = replay(admission::PolicyKind::kAdvanceBooking);
  ctx.set_items(3 * static_cast<std::uint64_t>(trace.requests.size()));

  bench::print_columns({"requests", "be_util", "online_util",
                        "advance_util", "online_block", "advance_block"});
  bench::print_row({static_cast<double>(trace.requests.size()),
                    best_effort.mean_utility, online.mean_utility,
                    advance.mean_utility, online.blocking_probability,
                    advance.blocking_probability});

  // Comparison contracts on the replay just timed.
  if (best_effort.blocked != 0) {
    ctx.fail("best effort must never block");
  }
  for (const auto* report : {&best_effort, &online, &advance}) {
    if (report->admitted + report->blocked != report->offered) {
      ctx.fail("offered must split exactly into admitted + blocked");
    }
  }
  if (online.peak_active > 100) {
    ctx.fail("online k_max admitted more than k_max concurrent flows");
  }
  // Same trace, same policy, same engine ⇒ bit-identical report.
  const auto again = replay(admission::PolicyKind::kAdvanceBooking);
  if (again.admitted != advance.admitted ||
      again.mean_utility != advance.mean_utility ||
      again.cancelled != advance.cancelled) {
    ctx.fail("replay is not deterministic across identical runs");
  }
}
