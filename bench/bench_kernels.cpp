// bench_kernels: the batched sweep kernels vs the scalar model.
//
// Three suites:
//  * kernels_point_sweep — B/R/δ/θ across the Figure 2/3/4 grids,
//    scalar VariableLoadModel vs SweepEvaluator, with every row checked
//    for exact equality (the equivalence contract is asserted, not
//    assumed, on the numbers being timed);
//  * kernels_welfare_sweep — the acceptance benchmark: the Poisson
//    rigid welfare scenario through the runner with kernels on vs off,
//    median wall-clock speedup over repetitions. Full mode enforces the
//    ≥3× target via ctx.fail; smoke mode only checks row equality.
//  * kernels_value_batch — microbenchmark of UtilityFunction::
//    value_batch against the scalar value() loop.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/kernels/sweep_evaluator.h"
#include "bevr/runner/runner.h"
#include "bevr/utility/utility.h"

namespace {

using namespace bevr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename T>
inline void keep(T value) {
  __asm__ __volatile__("" : "+m"(value) : : "memory");
}

struct FigureCase {
  const char* name;
  std::shared_ptr<const dist::DiscreteLoad> load;
  std::shared_ptr<const utility::UtilityFunction> pi;
};

std::vector<FigureCase> figure_cases() {
  return {
      {"fig2_poisson_rigid", std::make_shared<dist::PoissonLoad>(100.0),
       std::make_shared<utility::Rigid>(1.0)},
      {"fig3_exponential_adaptive",
       std::make_shared<dist::ExponentialLoad>(
           dist::ExponentialLoad::with_mean(100.0)),
       std::make_shared<utility::AdaptiveExp>()},
      {"fig4_algebraic_rigid",
       std::make_shared<dist::AlgebraicLoad>(
           dist::AlgebraicLoad::with_mean(3.0, 100.0)),
       std::make_shared<utility::Rigid>(1.0)},
  };
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

BEVR_BENCHMARK(kernels_point_sweep,
               "scalar model vs sweep kernels on the figure grids") {
  const int points = ctx.pick(160, 12);
  const int reps = ctx.pick(3, 1);
  const std::vector<double> grid = bench::linear_grid(10.0, 800.0, points);
  bench::print_columns({"scalar_s", "kernel_s", "speedup"});
  std::uint64_t evals = 0;
  for (const auto& figure : figure_cases()) {
    const auto model = std::make_shared<core::VariableLoadModel>(
        figure.load, figure.pi);
    const kernels::SweepEvaluator fast(model);
    std::vector<double> speedups;
    double scalar_s = 0.0;
    double kernel_s = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      auto start = Clock::now();
      for (const double c : grid) {
        keep(model->best_effort(c));
        keep(model->reservation(c));
        keep(model->performance_gap(c));
        keep(model->blocking_fraction(c));
      }
      scalar_s = seconds_since(start);
      start = Clock::now();
      const auto rows = fast.evaluate_grid(grid, /*with_bandwidth_gap=*/false);
      kernel_s = seconds_since(start);
      speedups.push_back(scalar_s / kernel_s);
      // Equivalence is asserted on the very numbers being timed.
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const double c = grid[i];
        if (rows[i].best_effort != model->best_effort(c) ||
            rows[i].reservation != model->reservation(c) ||
            rows[i].performance_gap != model->performance_gap(c) ||
            rows[i].blocking != model->blocking_fraction(c)) {
          ctx.fail(std::string(figure.name) + ": kernel row diverges at C=" +
                   std::to_string(c));
          break;
        }
      }
    }
    bench::print_row({scalar_s, kernel_s, median(speedups)});
    bench::print_note(figure.name);
    evals += static_cast<std::uint64_t>(grid.size()) * 4u *
             static_cast<std::uint64_t>(reps);
  }
  ctx.set_items(evals);
}

BEVR_BENCHMARK(kernels_welfare_sweep,
               "Poisson rigid welfare sweep, kernels on vs off") {
  runner::ScenarioSpec spec;
  spec.name = "bench_welfare_poisson_rigid";
  spec.model = runner::ModelKind::kWelfare;
  spec.load = runner::LoadFamily::kPoisson;
  spec.util = runner::UtilityFamily::kRigid;
  spec.util_param = 1.0;
  spec.grid = runner::GridSpec{0.01, 0.4, ctx.pick(16, 4), true};

  const int reps = ctx.pick(3, 1);
  const auto timed_run = [&spec](bool use_kernels, std::string* rows) {
    std::ostringstream out;
    runner::JsonlSink sink(out);
    runner::RunOptions options;
    options.threads = 1;
    options.use_kernels = use_kernels;
    const auto start = Clock::now();
    runner::run_scenario(spec, options, sink);
    const double wall = seconds_since(start);
    std::istringstream lines(out.str());
    std::string line;
    rows->clear();
    while (std::getline(lines, line)) {
      if (line.find("\"type\":\"row\"") != std::string::npos) {
        *rows += line + "\n";
      }
    }
    return wall;
  };

  bench::print_columns({"rep", "scalar_s", "kernel_s", "speedup"});
  std::vector<double> speedups;
  for (int rep = 0; rep < reps; ++rep) {
    std::string scalar_rows;
    std::string kernel_rows;
    const double scalar_s = timed_run(false, &scalar_rows);
    const double kernel_s = timed_run(true, &kernel_rows);
    speedups.push_back(scalar_s / kernel_s);
    bench::print_row({static_cast<double>(rep), scalar_s, kernel_s,
                      scalar_s / kernel_s});
    if (kernel_rows != scalar_rows) {
      ctx.fail("welfare rows diverge between kernels on and off");
    }
  }
  const double med = median(speedups);
  std::printf("  median speedup: %.2fx\n", med);
  // The PR's acceptance target. Timing is only trustworthy on the full
  // workload; smoke keeps the equality check and skips the gate.
  if (!ctx.smoke() && med < 3.0) {
    ctx.fail("welfare kernel speedup " + std::to_string(med) +
             "x below the 3x target");
  }
  ctx.set_items(static_cast<std::uint64_t>(spec.grid.points) *
                static_cast<std::uint64_t>(2 * reps));
}

BEVR_BENCHMARK(kernels_value_batch,
               "UtilityFunction::value_batch vs the scalar value() loop") {
  const std::size_t n = ctx.pick(std::size_t{8192}, std::size_t{512});
  const std::uint64_t iters = ctx.pick(std::uint64_t{2000}, std::uint64_t{20});
  std::vector<double> bandwidth(n);
  for (std::size_t i = 0; i < n; ++i) {
    bandwidth[i] = 0.001 * static_cast<double>(i + 1);
  }
  std::vector<double> out(n);
  bench::print_columns({"scalar_s", "batch_s", "speedup"});
  const std::vector<std::shared_ptr<const utility::UtilityFunction>> utils = {
      std::make_shared<utility::Elastic>(),
      std::make_shared<utility::AdaptiveExp>(),
      std::make_shared<utility::PiecewiseLinear>(0.5),
  };
  for (const auto& pi : utils) {
    auto start = Clock::now();
    for (std::uint64_t it = 0; it < iters; ++it) {
      for (std::size_t i = 0; i < n; ++i) out[i] = pi->value(bandwidth[i]);
      keep(out[n - 1]);
    }
    const double scalar_s = seconds_since(start);
    start = Clock::now();
    for (std::uint64_t it = 0; it < iters; ++it) {
      pi->value_batch(bandwidth, out);
      keep(out[n - 1]);
    }
    const double batch_s = seconds_since(start);
    bench::print_row({scalar_s, batch_s, scalar_s / batch_s});
    bench::print_note(pi->name());
  }
  ctx.set_items(static_cast<std::uint64_t>(n) * iters *
                static_cast<std::uint64_t>(2 * utils.size()));
}
