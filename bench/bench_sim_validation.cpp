// Simulator-vs-model validation tables: the dynamics the paper
// abstracts away, measured and compared with the analytic statics.
//  * M/M/∞ occupancy vs Poisson(k̄);
//  * empirical B(C)/R(C) vs the analytic discrete model;
//  * loss-system blocking vs Erlang-B and the model's flow fraction;
//  * bursty arrivals fattening the occupancy tail (the paper's case
//    for looking beyond Poisson loads).
#include <memory>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/fixed_load.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/poisson.h"
#include "bevr/sim/simulator.h"
#include "bevr/utility/utility.h"

BEVR_BENCHMARK(sim_validation, "simulator-vs-model validation tables") {
  using namespace bevr;
  const double offered = 100.0;
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const auto poisson = std::make_shared<dist::PoissonLoad>(offered);
  const core::VariableLoadModel model(poisson, pi);
  std::uint64_t flow_sims = 0;

  sim::SimulationConfig config;
  config.capacity = 100.0;
  config.horizon = ctx.pick(8000.0, 500.0);
  config.warmup = ctx.pick(400.0, 50.0);
  config.seed = 2024;
  const double base_horizon = config.horizon;

  {
    bench::print_header("M/M/inf occupancy vs Poisson(100)");
    config.architecture = sim::Architecture::kBestEffort;
    const sim::FlowSimulator simulator(
        config, pi, std::make_shared<sim::PoissonArrivals>(offered),
        std::make_shared<sim::ExponentialHolding>(1.0));
    const auto report = simulator.run();
    ++flow_sims;
    bench::print_columns({"k", "empirical", "poisson_pmf"});
    for (std::int64_t k = 80; k <= 120; k += 5) {
      const double empirical =
          static_cast<std::size_t>(k) < report.occupancy_pmf.size()
              ? report.occupancy_pmf[static_cast<std::size_t>(k)]
              : 0.0;
      bench::print_row({static_cast<double>(k), empirical, poisson->pmf(k)});
    }
  }
  {
    bench::print_header("Empirical utilities vs analytic B(C), R(C)");
    bench::print_columns({"C", "sim_B", "model_B", "sim_R", "model_R"});
    for (const double c : {70.0, 85.0, 100.0, 120.0}) {
      config.capacity = c;
      config.architecture = sim::Architecture::kBestEffort;
      const auto be = sim::FlowSimulator(
                          config, pi,
                          std::make_shared<sim::PoissonArrivals>(offered),
                          std::make_shared<sim::ExponentialHolding>(1.0))
                          .run();
      config.architecture = sim::Architecture::kReservation;
      config.admission_limit = *core::k_max(*pi, c);
      const auto rs = sim::FlowSimulator(
                          config, pi,
                          std::make_shared<sim::PoissonArrivals>(offered),
                          std::make_shared<sim::ExponentialHolding>(1.0))
                          .run();
      flow_sims += 2;
      bench::print_row({c, be.mean_utility, model.best_effort(c),
                        rs.mean_utility, model.reservation(c)});
    }
  }
  {
    bench::print_header("Loss-system blocking vs Erlang-B (C=90, rho=100)");
    config.capacity = 90.0;
    config.architecture = sim::Architecture::kReservation;
    config.admission_limit = 90;
    const auto rigid = std::make_shared<utility::Rigid>(1.0);
    const auto report = sim::FlowSimulator(
                            config, rigid,
                            std::make_shared<sim::PoissonArrivals>(offered),
                            std::make_shared<sim::ExponentialHolding>(1.0))
                            .run();
    ++flow_sims;
    double erlang_b = 1.0;
    for (int m = 1; m <= 90; ++m) {
      erlang_b = offered * erlang_b / (m + offered * erlang_b);
    }
    const core::VariableLoadModel rigid_model(poisson, rigid);
    bench::print_columns({"sim_blocking", "erlang_b", "model_fraction"});
    bench::print_row({report.blocking_probability, erlang_b,
                      rigid_model.blocking_fraction(90.0)});
  }
  {
    bench::print_header("Occupancy tail mass P[K>130]: Poisson vs bursty");
    config.capacity = 100.0;
    config.architecture = sim::Architecture::kBestEffort;
    config.horizon = ctx.pick(20'000.0, 1000.0);
    const auto holding = std::make_shared<sim::ExponentialHolding>(1.0);
    const auto p_report =
        sim::FlowSimulator(config, pi,
                           std::make_shared<sim::PoissonArrivals>(offered),
                           holding)
            .run();
    const auto b_report =
        sim::FlowSimulator(config, pi,
                           std::make_shared<sim::BurstyArrivals>(
                               1000.0, 1.0 / 0.019, 0.5),
                           holding)
            .run();
    flow_sims += 2;
    config.horizon = base_horizon;
    auto tail = [](const sim::SimulationReport& report) {
      double mass = 0.0;
      for (std::size_t k = 131; k < report.occupancy_pmf.size(); ++k) {
        mass += report.occupancy_pmf[k];
      }
      return mass;
    };
    bench::print_columns({"poisson_tail", "bursty_tail"});
    bench::print_row({tail(p_report), tail(b_report)});
    bench::print_note(
        "burstiness fattens the load tail: the regime where reservations "
        "matter (Sec 6)");
  }
  ctx.set_items(flow_sims);
}
