// bench_runner: the experiment engine vs the hand-rolled serial loop.
//
// Measures, on one Figure-3-style grid (exponential load, rigid apps,
// B/R/δ/Δ per capacity):
//  * serial baseline — the plain loop sweep.cpp used to run, no pool,
//    no cache;
//  * the runner at 1/2/4 threads with memoized evaluation, reporting
//    wall-clock speedup and cache hit rate;
//  * payload equality across thread counts (the determinism contract).
// Speedup scales with available cores; on a single-core host the
// parallel runs only demonstrate that determinism and overheads hold.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/exponential.h"
#include "bevr/runner/runner.h"
#include "bevr/utility/utility.h"

namespace {

using namespace bevr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

runner::ScenarioSpec bench_scenario(int grid_points) {
  runner::ScenarioSpec spec;
  spec.name = "bench_fig3_rigid_grid";
  spec.model = runner::ModelKind::kVariableLoad;
  spec.load = runner::LoadFamily::kExponential;
  spec.util = runner::UtilityFamily::kRigid;
  spec.util_param = 1.0;
  spec.grid = runner::GridSpec{10.0, 800.0, grid_points, false};
  return spec;
}

/// The pre-runner serial path: a bare loop over the grid calling the
/// model directly (what examples/sweep.cpp did).
double serial_baseline(const runner::ScenarioSpec& spec) {
  const auto model = core::VariableLoadModel(
      std::make_shared<dist::ExponentialLoad>(
          dist::ExponentialLoad::with_mean(spec.load_mean)),
      std::make_shared<utility::Rigid>(spec.util_param));
  const auto start = Clock::now();
  double checksum = 0.0;
  for (const double c : spec.grid.values()) {
    checksum += model.best_effort(c) + model.reservation(c) +
                model.performance_gap(c) + model.bandwidth_gap(c) +
                model.blocking_fraction(c);
  }
  const double elapsed = seconds_since(start);
  std::printf("  serial baseline: %.3fs (checksum %.6f)\n", elapsed, checksum);
  return elapsed;
}

struct TimedRun {
  double wall = 0.0;
  runner::CacheStats cache;
  std::string payload;
};

TimedRun runner_run(const runner::ScenarioSpec& spec, unsigned threads) {
  std::ostringstream out;
  runner::JsonlSink sink(out);
  runner::RunOptions options;
  options.threads = threads;
  const auto start = Clock::now();
  const runner::RunSummary summary = runner::run_scenario(spec, options, sink);
  TimedRun result;
  result.wall = seconds_since(start);
  result.cache = summary.cache;
  // Keep only deterministic data rows for the cross-thread comparison.
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"type\":\"row\"") != std::string::npos) {
      result.payload += line + "\n";
    }
  }
  return result;
}

runner::ScenarioSpec sim_scenario(double horizon) {
  runner::ScenarioSpec spec;
  spec.name = "bench_sim_grid";
  spec.model = runner::ModelKind::kSimulation;
  spec.load = runner::LoadFamily::kPoisson;
  spec.load_mean = 100.0;
  spec.util = runner::UtilityFamily::kRigid;
  spec.util_param = 1.0;
  spec.grid = runner::GridSpec{60.0, 200.0, 8, false};
  spec.sim_horizon = horizon;
  spec.sim_warmup = horizon / 8.0;
  return spec;
}

/// Run the scenario at 1/2/4 threads, reporting wall time, speedup
/// over the 1-thread (inline, poolless) path, cache hit rate, and the
/// determinism check. Returns false if any payload diverged.
bool scale_section(const runner::ScenarioSpec& spec) {
  bevr::bench::print_columns({"threads", "wall_s", "speedup", "hit_rate"});
  std::string reference_payload;
  bool deterministic = true;
  double serial_wall = 0.0;
  for (const unsigned threads : {1u, 2u, 4u}) {
    const TimedRun run = runner_run(spec, threads);
    if (threads == 1) serial_wall = run.wall;
    bevr::bench::print_row({static_cast<double>(threads), run.wall,
                            serial_wall / run.wall, run.cache.hit_rate()});
    if (reference_payload.empty()) {
      reference_payload = run.payload;
    } else if (run.payload != reference_payload) {
      deterministic = false;
    }
  }
  std::printf("  payload identical across thread counts: %s\n",
              deterministic ? "yes" : "NO");
  return deterministic;
}

}  // namespace

BEVR_BENCHMARK(runner, "experiment engine vs serial loop + determinism") {
  bevr::bench::print_header("runner: parallel sweep engine vs serial loop");
  std::printf("  host threads: %u\n", std::thread::hardware_concurrency());

  std::printf("\n  -- model sweep: exponential load (kbar=100), rigid, "
              "B,R,delta,Delta,k_max,blocking --\n");
  const runner::ScenarioSpec model_spec = bench_scenario(ctx.pick(24, 8));
  const double serial = serial_baseline(model_spec);
  const TimedRun engine = runner_run(model_spec, 1);
  std::printf("  engine@1thread:  %.3fs (%.2fx vs bare loop; engine overhead "
              "+ memoized delta)\n",
              engine.wall, serial / engine.wall);
  if (!scale_section(model_spec)) {
    ctx.fail("model sweep payload diverged across thread counts");
  }

  std::printf("\n  -- simulation sweep: M/M/inf validation, 8 capacities x "
              "2 architectures --\n");
  if (!scale_section(sim_scenario(ctx.pick(800.0, 200.0)))) {
    ctx.fail("simulation sweep payload diverged across thread counts");
  }

  bevr::bench::print_note(
      "speedup is bounded by physical cores (1 here => ~1x); determinism "
      "must hold everywhere");
  // 2 sweeps x (serial + 3 threaded runs) grid evaluations is the
  // nominal unit; keep it simple: count the seven engine/serial runs.
  ctx.set_items(7);
}
