// Continuum model (§3.2/§3.3): closed-form B, R, δ, Δ for the four
// tractable cases plus the algebraic-tail-utility growth regimes, and
// the asymptotic laws the paper derives:
//   exponential+rigid:    Δ(C) ~ ln(βC)/β           (logarithmic)
//   exponential+adaptive: Δ(C) → −ln(1−a)/β          (constant)
//   algebraic+rigid:      Δ(C) = C((z−1)^{1/(z−2)}−1) (linear)
//   algebraic+adaptive:   Δ(C) = C((1+a(1−a^{z−2})/(1−a))^{1/(z−2)}−1)
#include <memory>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/asymptotics.h"
#include "bevr/core/continuum.h"

BEVR_BENCHMARK(continuum, "closed-form continuum cases + asymptotic laws") {
  using namespace bevr;
  using namespace bevr::core;
  const double beta = 0.01;  // continuum mean 100 matches the discrete runs
  const double a = 0.5;
  const double z = 3.0;
  const int points = ctx.pick(11, 4);
  const int price_points = ctx.pick(9, 3);
  std::uint64_t evaluations = 0;

  {
    bench::print_header("Continuum exponential (beta=0.01): rigid vs adaptive");
    const ExponentialRigidContinuum rigid(beta);
    const ExponentialAdaptiveContinuum adaptive(beta, a);
    bench::print_columns({"C", "B_rig", "R_rig", "Delta_rig", "ln(1+bC)/b",
                          "B_ad", "Delta_ad"});
    for (const double c : bench::log_grid(25.0, 25'600.0, points)) {
      bench::print_row({c, rigid.best_effort(c), rigid.reservation(c),
                        rigid.bandwidth_gap(c),
                        asymptotics::exponential_rigid_gap(beta, c),
                        adaptive.best_effort(c), adaptive.bandwidth_gap(c)});
      evaluations += 6;
    }
    bench::print_note("adaptive Delta limit -ln(1-a)/beta = " +
                      std::to_string(adaptive.bandwidth_gap_limit()));
  }
  {
    bench::print_header("Continuum algebraic (z=3): rigid vs adaptive");
    const AlgebraicRigidContinuum rigid(z);
    const AlgebraicAdaptiveContinuum adaptive(z, a);
    bench::print_columns({"C", "B_rig", "R_rig", "Delta_rig", "Delta_rig/C",
                          "Delta_ad", "Delta_ad/C"});
    for (const double c : bench::log_grid(2.0, 2048.0, points)) {
      bench::print_row({c, rigid.best_effort(c), rigid.reservation(c),
                        rigid.bandwidth_gap(c), rigid.bandwidth_gap(c) / c,
                        adaptive.bandwidth_gap(c),
                        adaptive.bandwidth_gap(c) / c});
      evaluations += 5;
    }
    bench::print_note("rigid slope (z-1)^{1/(z-2)}-1 = 1 exactly at z=3");
    bench::print_note(
        "adaptive slope = (1+a(1-a^{z-2})/(1-a))^{1/(z-2)}-1 = 0.5 at a=0.5");
  }
  {
    bench::print_header(
        "Continuum welfare gamma(p): exponential -> 1, algebraic -> const");
    const ExponentialRigidContinuum exp_rigid(beta);
    const ExponentialAdaptiveContinuum exp_adaptive(beta, a);
    const AlgebraicRigidContinuum alg_rigid(z);
    const AlgebraicAdaptiveContinuum alg_adaptive(z, a);
    bench::print_columns({"p", "g_exp_rig", "g_exp_ad", "g_alg_rig",
                          "g_alg_ad"});
    for (const double p : bench::log_grid(1e-8, 0.3, price_points)) {
      bench::print_row({p, exp_rigid.equalizing_price_ratio(p),
                        exp_adaptive.equalizing_price_ratio(p),
                        alg_rigid.equalizing_price_ratio(p),
                        alg_adaptive.equalizing_price_ratio(p)});
      evaluations += 4;
    }
    bench::print_note("algebraic rigid gamma = (z-1)^{1/(z-2)} = 2 at z=3");
  }
  {
    bench::print_header(
        "Sec 3.3 footnote: algebraic-tail utility pi(b)=1-b^{-r}, z=4");
    bench::print_note(
        "regimes: r>z-2 -> Delta~C; z-3<r<z-2 -> sublinear; r<z-3 -> decays");
    bench::print_columns({"C", "Delta(r=3)", "Delta(r=1.5)", "Delta(r=0.5)"});
    const AlgebraicTailUtilityContinuum fast(4.0, 3.0);
    const AlgebraicTailUtilityContinuum mid(4.0, 1.5);
    const AlgebraicTailUtilityContinuum slow(4.0, 0.5);
    for (const double c : bench::log_grid(10.0, 10'240.0, price_points)) {
      bench::print_row({c, fast.bandwidth_gap(c), mid.bandwidth_gap(c),
                        slow.bandwidth_gap(c)});
      evaluations += 3;
    }
  }
  ctx.set_items(evaluations);
}
