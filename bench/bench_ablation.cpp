// Ablations of the design choices DESIGN.md calls out.
//
//  1. Numeric engine: accuracy/cost of the hybrid direct-sum +
//     Euler–Maclaurin-integral evaluation versus pure direct summation
//     (the heavy-tailed algebraic load is the stress case).
//  2. Admission threshold sensitivity: how much utility a reservation
//     network loses when its admission limit deviates from k_max(C) —
//     the headroom measurement-based admission control plays in.
//  3. Adaptivity sweep: κ (discrete) and a (continuum) interpolate
//     between the paper's rigid and elastic extremes, tracing how the
//     architecture gap depends on how adaptive applications really are
//     (the caveat the paper closes with).
#include <chrono>
#include <functional>
#include <memory>

#include "bevr/bench/bench_util.h"
#include "bevr/bench/registry.h"
#include "bevr/core/continuum.h"
#include "bevr/core/fixed_load.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/utility/utility.h"

namespace {

double time_ms(const std::function<double()>& f, double* value) {
  const auto start = std::chrono::steady_clock::now();
  *value = f();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

BEVR_BENCHMARK(ablation, "DESIGN.md ablations: numerics, admission, adaptivity") {
  using namespace bevr;
  const auto algebraic = std::make_shared<dist::AlgebraicLoad>(
      dist::AlgebraicLoad::with_mean(3.0, 100.0));
  const auto exponential = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  const auto adaptive = std::make_shared<utility::AdaptiveExp>();
  std::uint64_t evaluations = 0;

  {
    bench::print_header(
        "Ablation 1: hybrid tail evaluation (algebraic z=3, B(400))");
    bench::print_columns({"direct_budget", "B(400)", "ms/eval", "err_vs_ref"});
    core::VariableLoadModel::Options reference_options;
    reference_options.direct_budget = ctx.pick(std::int64_t{50'000'000},
                                               std::int64_t{2'000'000});
    const core::VariableLoadModel reference(algebraic, adaptive,
                                            reference_options);
    double ref_value = 0.0;
    const double ref_ms =
        time_ms([&] { return reference.best_effort(400.0); }, &ref_value);
    const std::vector<std::int64_t> budgets =
        ctx.smoke() ? std::vector<std::int64_t>{2048, 65'536}
                    : std::vector<std::int64_t>{2048, 8192, 65'536, 1'048'576};
    for (const std::int64_t budget : budgets) {
      core::VariableLoadModel::Options options;
      options.direct_budget = budget;
      const core::VariableLoadModel model(algebraic, adaptive, options);
      double value = 0.0;
      const double ms = time_ms([&] { return model.best_effort(400.0); },
                                &value);
      bench::print_row({static_cast<double>(budget), value, ms,
                        std::abs(value - ref_value)});
      evaluations += 1;
    }
    bench::print_row({static_cast<double>(reference_options.direct_budget),
                      ref_value, ref_ms, 0.0});
    bench::print_note("a 2k-term head + integral tail matches the 50M-term "
                      "direct sum to ~1e-9 at a tiny fraction of the cost");
  }
  {
    bench::print_header(
        "Ablation 2: admission threshold sensitivity (exponential, C=150)");
    const double capacity = 150.0;
    const core::VariableLoadModel model(exponential, adaptive);
    const auto kmax = *model.k_max(capacity);
    bench::print_columns({"limit/kmax", "R_at_limit", "loss_vs_opt"});
    // R with a non-optimal admission limit: reuse the model pieces.
    auto r_at = [&](std::int64_t limit) {
      // Σ_{k≤limit} Q(k)π(C/k) + π(C/limit)·limit·tail/kbar.
      double head = 0.0;
      for (std::int64_t k = 1; k <= limit; ++k) {
        head += exponential->pmf(k) * static_cast<double>(k) *
                adaptive->value(capacity / static_cast<double>(k)) / 100.0;
      }
      const double cap_util =
          adaptive->value(capacity / static_cast<double>(limit));
      return head + cap_util * static_cast<double>(limit) *
                        exponential->tail_above(limit) / 100.0;
    };
    const double optimal = r_at(kmax);
    const std::vector<double> fractions =
        ctx.smoke() ? std::vector<double>{0.8, 1.0, 1.25}
                    : std::vector<double>{0.6, 0.8, 0.9, 1.0,
                                          1.1, 1.25, 1.5, 2.0};
    for (const double fraction : fractions) {
      const auto limit =
          static_cast<std::int64_t>(fraction * static_cast<double>(kmax));
      const double r = r_at(limit);
      bench::print_row({fraction, r, optimal - r});
      evaluations += 1;
    }
    bench::print_note(
        "the optimum is flat above k_max but falls off below it: over-"
        "admitting is cheap for adaptive apps, under-admitting is not — "
        "headroom for measurement-based admission error");
  }
  {
    bench::print_header(
        "Ablation 3a: kappa sweep (discrete adaptivity), exponential, C=200");
    bench::print_columns({"kappa", "delta(200)", "Delta(200)"});
    for (const double kappa : {0.1, 0.3, 0.62086, 1.5, 4.0, 10.0}) {
      const auto pi = std::make_shared<utility::AdaptiveExp>(kappa);
      const core::VariableLoadModel model(exponential, pi);
      bench::print_row({kappa, model.performance_gap(200.0),
                        model.bandwidth_gap(200.0)});
      evaluations += 2;
    }
    bench::print_note("larger kappa = less value at low shares = closer to "
                      "rigid behaviour: gaps grow with kappa");
  }
  {
    bench::print_header(
        "Ablation 3b: floor sweep a (continuum adaptivity), algebraic z=3");
    bench::print_columns({"a", "Delta(C)/C limit", "gamma(p->0)"});
    for (const double a : {0.05, 0.2, 0.5, 0.8, 0.95, 0.999}) {
      const core::AlgebraicAdaptiveContinuum model(3.0, a);
      bench::print_row({a, std::pow(model.gap_ratio_power(), 1.0) - 1.0,
                        model.equalizing_price_ratio(1e-6)});
      evaluations += 2;
    }
    bench::print_note("a -> 1 recovers the rigid values (slope 1, gamma 2); "
                      "a -> 0 erases the reservation advantage");
  }
  ctx.set_items(evaluations);
}
